// Campaign server tests: spec canonicalization, trial-record round trips,
// the ResultStore segment file, and the CampaignEngine's acceptance
// criteria — an identical (spec, seed) resubmission is a full cache hit
// (zero trials executed, byte-identical artifact), output is bit-identical
// across worker counts, and the bounded admission queue rejects overload
// with a distinct status.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "rst/core/config_io.hpp"
#include "rst/server/campaign.hpp"
#include "rst/server/campaign_engine.hpp"
#include "rst/server/protocol.hpp"
#include "rst/server/result_store.hpp"

namespace rst::server {
namespace {

constexpr const char* kSpec =
    "# blind-corner campaign\n"
    "target_speed_mps = 0.45\n"
    "detection_fps = 20\n";

/// A scratch path in the build tree; removed before use so each test run
/// starts from an empty segment.
std::string scratch_path(const char* name) {
  std::string path = std::string{"campaign_test_"} + name + ".seg";
  std::remove(path.c_str());
  return path;
}

// --- Canonicalization ------------------------------------------------------

TEST(Canonicalize, IsAFixedPoint) {
  const std::string once = core::canonicalize_spec(kSpec);
  EXPECT_EQ(core::canonicalize_spec(once), once);
}

TEST(Canonicalize, CommentsWhitespaceAndOrderDoNotMatter) {
  const std::string reordered =
      "detection_fps=20\n"
      "   target_speed_mps   =   0.45   # trailing comment\n";
  EXPECT_EQ(core::canonicalize_spec(reordered), core::canonicalize_spec(kSpec));
}

TEST(Canonicalize, NumericFormattingIsNormalized) {
  // 0.450 and 4.5e-1 are the same double; the canonical form renders it
  // one way, so all three spell the same campaign.
  EXPECT_EQ(core::canonicalize_spec("target_speed_mps = 0.450\n"),
            core::canonicalize_spec("target_speed_mps = 4.5e-1\n"));
}

TEST(Canonicalize, RepeatedFaultClausesKeepTheirOrder) {
  const std::string spec =
      "fault = node-down:rsu:10:20:1\n"
      "seed = 9\n"
      "fault = http-loss:lan:0:5:0.5\n";
  const std::string canon = core::canonicalize_spec(spec);
  // Stable sort: both clauses survive, in submission order.
  const auto first = canon.find("node-down");
  const auto second = canon.find("http-loss");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_EQ(core::canonicalize_spec(canon), canon);
}

TEST(Canonicalize, DistinctSpecsGetDistinctKeys) {
  const auto key = [](const char* spec) { return trial_key(core::canonicalize_spec(spec), 1); };
  EXPECT_NE(key("target_speed_mps = 0.45\n"), key("target_speed_mps = 0.46\n"));
  EXPECT_NE(trial_key(core::canonicalize_spec(kSpec), 1),
            trial_key(core::canonicalize_spec(kSpec), 2));
}

// --- Trial records ---------------------------------------------------------

TEST(TrialRecord, RoundTripsExactly) {
  core::TrialResult r;
  r.stopped_by_denm = true;
  r.t_detection = sim::SimTime::nanoseconds(13612044980);
  r.t_halt = sim::SimTime::nanoseconds(13816000000);
  r.meas_total_ms = 40.580674999999999;
  r.braking_distance_m = 0.056521836067378928;
  r.detection_distance_m = 1.49783050298794;
  r.speed_at_detection_mps = 0.45107080754431228;
  const std::string line = serialize_trial_record(42, r);
  const TrialRecord back = parse_trial_record(line);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.result.stopped_by_denm, r.stopped_by_denm);
  EXPECT_EQ(back.result.t_detection, r.t_detection);
  EXPECT_EQ(back.result.t_halt, r.t_halt);
  // %.17g round-trips every finite double bit-for-bit.
  EXPECT_EQ(back.result.meas_total_ms, r.meas_total_ms);
  EXPECT_EQ(back.result.braking_distance_m, r.braking_distance_m);
  EXPECT_EQ(back.result.detection_distance_m, r.detection_distance_m);
  EXPECT_EQ(back.result.speed_at_detection_mps, r.speed_at_detection_mps);
  // Serializing the parsed record reproduces the exact bytes.
  EXPECT_EQ(serialize_trial_record(back.seed, back.result), line);
}

TEST(TrialRecord, TruncatedOrCorruptRecordsFailLoud) {
  const std::string line = serialize_trial_record(1, core::TrialResult{});
  EXPECT_THROW((void)parse_trial_record(line.substr(0, line.size() / 2)), std::invalid_argument);
  EXPECT_THROW((void)parse_trial_record(line + " bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_trial_record("seed=abc"), std::invalid_argument);
}

TEST(TrialRecord, DuplicatedFieldCannotMaskAMissingOne) {
  const std::string line = serialize_trial_record(1, core::TrialResult{});
  // Swap one field for a duplicate of another: the token count is still 17,
  // but the record would silently decode total_ms as default-zero.
  const auto total = line.find(" total_ms=");
  const auto after_total = line.find(' ', total + 1);
  ASSERT_NE(total, std::string::npos);
  const std::string dup_for_missing =
      line.substr(0, total) + " brake_m=1" +
      (after_total == std::string::npos ? "" : line.substr(after_total));
  EXPECT_THROW((void)parse_trial_record(dup_for_missing), std::invalid_argument);
  // A plain 18-token duplicate fails too.
  EXPECT_THROW((void)parse_trial_record(line + " seed=1"), std::invalid_argument);
}

// --- ResultStore -----------------------------------------------------------

TEST(ResultStore, MemoryOnlyPutGet) {
  ResultStore store;
  EXPECT_FALSE(store.contains(7));
  store.put(7, "value");
  ASSERT_TRUE(store.contains(7));
  EXPECT_EQ(*store.get(7), "value");
  EXPECT_EQ(store.count(), 1u);
}

TEST(ResultStore, SurvivesReopen) {
  const std::string path = scratch_path("reopen");
  {
    ResultStore store{path};
    store.put(1, "one");
    store.put(2, "two");
  }
  ResultStore reopened{path};
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_EQ(*reopened.get(1), "one");
  EXPECT_EQ(*reopened.get(2), "two");
  std::remove(path.c_str());
}

TEST(ResultStore, ToleratesTornTail) {
  const std::string path = scratch_path("torn");
  {
    ResultStore store{path};
    store.put(1, "one");
    store.put(2, "two");
  }
  // Chop a few bytes off the tail — a crash mid-append.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), size - 2), 0);
  }
  ResultStore reopened{path};
  EXPECT_EQ(reopened.count(), 1u);  // the torn record is dropped
  EXPECT_EQ(*reopened.get(1), "one");
  std::remove(path.c_str());
}

TEST(ResultStore, AppendsAfterTornTailStayParseable) {
  // A torn tail must be truncated from the file, not just skipped in the
  // index: records appended after partial bytes would misalign every later
  // replay (the torn length header eats the next record's start).
  const std::string path = scratch_path("torn_append");
  {
    ResultStore store{path};
    store.put(1, "one");
    store.put(2, "two");
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), size - 2), 0);
  }
  {
    ResultStore store{path};
    EXPECT_EQ(store.count(), 1u);
    store.put(3, "three");  // lands where the torn bytes were
    store.put(2, "two again");
  }
  ResultStore reopened{path};
  EXPECT_EQ(reopened.count(), 3u);
  EXPECT_EQ(*reopened.get(1), "one");
  EXPECT_EQ(*reopened.get(2), "two again");
  EXPECT_EQ(*reopened.get(3), "three");
  std::remove(path.c_str());
}

TEST(ResultStore, TornMagicHeaderIsTruncatedAway) {
  // A crash during the very first append can leave a prefix of the magic;
  // that is a torn write, not a foreign file — reopen treats it as empty.
  const std::string path = scratch_path("torn_magic");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(ResultStore::kMagic, 1, 3, f);
    std::fclose(f);
  }
  {
    ResultStore store{path};
    EXPECT_EQ(store.count(), 0u);
    store.put(9, "nine");
  }
  ResultStore reopened{path};
  EXPECT_EQ(reopened.count(), 1u);
  EXPECT_EQ(*reopened.get(9), "nine");
  std::remove(path.c_str());
}

TEST(ResultStore, CompactionReclaimsSupersededBytes) {
  const std::string path = scratch_path("compact");
  {
    ResultStore store{path};
    store.put(1, "first version, rather long so the dead bytes are visible");
    store.put(1, "second");
    store.put(2, "other");
    EXPECT_GT(store.appended_bytes(), store.live_bytes());
    const std::uint64_t reclaimed = store.compact();
    EXPECT_GT(reclaimed, 0u);
    EXPECT_EQ(store.appended_bytes(), store.live_bytes());
    EXPECT_EQ(*store.get(1), "second");
  }
  ResultStore reopened{path};
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_EQ(*reopened.get(1), "second");
  EXPECT_EQ(*reopened.get(2), "other");
  std::remove(path.c_str());
}

TEST(ResultStore, RejectsForeignFile) {
  const std::string path = scratch_path("foreign");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a segment", f);
    std::fclose(f);
  }
  EXPECT_THROW(ResultStore{path}, std::runtime_error);
  std::remove(path.c_str());
}

// --- CampaignEngine --------------------------------------------------------

CampaignRequest small_campaign(int trials = 4) {
  CampaignRequest request;
  request.spec = kSpec;
  request.trials = trials;
  request.base_seed = 42;
  return request;
}

TEST(CampaignEngine, ResubmissionIsAFullCacheHit) {
  CampaignEngine engine{{}};
  const CampaignOutcome cold = engine.execute(small_campaign());
  ASSERT_EQ(cold.status, CampaignOutcome::Status::Ok);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 4u);
  EXPECT_EQ(cold.executed, 4u);
  const std::uint64_t executed_after_cold = engine.trials_executed();

  const CampaignOutcome warm = engine.execute(small_campaign());
  ASSERT_EQ(warm.status, CampaignOutcome::Status::Ok);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.executed, 0u);
  // Zero trials re-executed, proven by the engine-lifetime counter...
  EXPECT_EQ(engine.trials_executed(), executed_after_cold);
  // ...and the artifact is byte-identical.
  EXPECT_EQ(warm.artifact, cold.artifact);
  EXPECT_EQ(warm.id, cold.id);
}

TEST(CampaignEngine, SpellingVariantsShareTheCache) {
  CampaignEngine engine{{}};
  const CampaignOutcome cold = engine.execute(small_campaign());
  CampaignRequest variant = small_campaign();
  variant.spec = "detection_fps=20\ntarget_speed_mps = 4.5e-1  # same campaign\n";
  const CampaignOutcome warm = engine.execute(variant);
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(warm.artifact, cold.artifact);
}

TEST(CampaignEngine, ArtifactIsBitIdenticalAcrossWorkerCounts) {
  CampaignEngineConfig serial;
  serial.threads = 1;
  CampaignEngineConfig pooled;
  pooled.threads = 8;
  CampaignEngine a{serial};
  CampaignEngine b{pooled};
  const CampaignOutcome ra = a.execute(small_campaign(8));
  const CampaignOutcome rb = b.execute(small_campaign(8));
  ASSERT_EQ(ra.status, CampaignOutcome::Status::Ok);
  ASSERT_EQ(rb.status, CampaignOutcome::Status::Ok);
  EXPECT_EQ(ra.artifact, rb.artifact);
  // Both executed everything — this is a cold-vs-cold comparison.
  EXPECT_EQ(ra.executed, 8u);
  EXPECT_EQ(rb.executed, 8u);
}

TEST(CampaignEngine, PartialOverlapRunsOnlyTheMisses) {
  CampaignEngine engine{{}};
  (void)engine.execute(small_campaign(4));  // seeds 42..45
  CampaignRequest wider = small_campaign(6);  // seeds 42..47
  const CampaignOutcome out = engine.execute(wider);
  EXPECT_EQ(out.cache_hits, 4u);
  EXPECT_EQ(out.cache_misses, 2u);
  EXPECT_EQ(out.executed, 2u);
}

TEST(CampaignEngine, StreamsInSeedOrderIncrementally) {
  CampaignEngineConfig config;
  config.threads = 4;
  CampaignEngine engine{config};
  std::vector<std::string> lines;
  const CampaignOutcome out =
      engine.execute(small_campaign(6), [&](const std::string& line) { lines.push_back(line); });
  ASSERT_EQ(out.status, CampaignOutcome::Status::Ok);
  ASSERT_GE(lines.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(lines[static_cast<std::size_t>(i)].rfind("TRIAL " + std::to_string(i) + " ", 0), 0u);
  }
  // The streamed lines are exactly the artifact.
  std::string joined;
  for (const auto& line : lines) joined += line + "\n";
  EXPECT_EQ(joined, out.artifact);
}

TEST(CampaignEngine, CacheHitsComeFromTheSegmentFileAfterReopen) {
  const std::string path = scratch_path("engine");
  std::string cold_artifact;
  {
    CampaignEngineConfig config;
    config.store_path = path;
    CampaignEngine engine{config};
    cold_artifact = engine.execute(small_campaign()).artifact;
  }
  CampaignEngineConfig config;
  config.store_path = path;
  CampaignEngine reopened{config};
  const CampaignOutcome warm = reopened.execute(small_campaign());
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(warm.artifact, cold_artifact);
  EXPECT_EQ(reopened.trials_executed(), 0u);
  std::remove(path.c_str());
}

TEST(CampaignEngine, BadSpecIsAnErrorNotACrash) {
  CampaignEngine engine{{}};
  CampaignRequest bad = small_campaign();
  bad.spec = "no_such_knob = 1\n";
  const CampaignOutcome out = engine.execute(bad);
  EXPECT_EQ(out.status, CampaignOutcome::Status::Error);
  EXPECT_NE(out.error.find("no_such_knob"), std::string::npos);
  EXPECT_EQ(engine.trials_executed(), 0u);
}

TEST(CampaignEngine, BoundedQueueRejectsOverload) {
  CampaignEngineConfig config;
  config.queue_capacity = 2;
  CampaignEngine engine{config};
  EXPECT_EQ(engine.submit(small_campaign()), CampaignEngine::Admission::Admitted);
  EXPECT_EQ(engine.submit(small_campaign()), CampaignEngine::Admission::Admitted);
  // Queue full: the distinct rejected status, not unbounded growth.
  EXPECT_EQ(engine.submit(small_campaign()), CampaignEngine::Admission::Rejected);
  EXPECT_EQ(engine.queue_depth(), 2u);
  EXPECT_EQ(engine.metrics().counter("campaigns_rejected").value(), 1u);
  // execute() honors the same admission bound while a backlog exists.
  const CampaignOutcome out = engine.execute(small_campaign());
  EXPECT_EQ(out.status, CampaignOutcome::Status::Rejected);
  // Draining the queue runs the admitted campaigns.
  EXPECT_TRUE(engine.run_one().has_value());
  EXPECT_TRUE(engine.run_one().has_value());
  EXPECT_FALSE(engine.run_one().has_value());
}

TEST(CampaignEngine, DropOldestShedsTheStalestCampaign) {
  CampaignEngineConfig config;
  config.queue_capacity = 1;
  config.overflow = CampaignEngineConfig::OverflowPolicy::DropOldest;
  CampaignEngine engine{config};
  CampaignRequest first = small_campaign(2);
  CampaignRequest second = small_campaign(3);
  EXPECT_EQ(engine.submit(first), CampaignEngine::Admission::Admitted);
  EXPECT_EQ(engine.submit(second), CampaignEngine::Admission::Admitted);
  EXPECT_EQ(engine.queue_depth(), 1u);
  EXPECT_EQ(engine.metrics().counter("campaigns_shed").value(), 1u);
  // The survivor is the newer submission.
  const auto out = engine.run_one();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->cache_misses, 3u);
}

TEST(CampaignEngine, ExecuteHonorsDropOldestPolicy) {
  CampaignEngineConfig config;
  config.queue_capacity = 1;
  config.overflow = CampaignEngineConfig::OverflowPolicy::DropOldest;
  CampaignEngine engine{config};
  EXPECT_EQ(engine.submit(small_campaign(2)), CampaignEngine::Admission::Admitted);
  // The queue is full, but the synchronous path applies the configured
  // policy: the stalest queued campaign is shed and this one runs.
  const CampaignOutcome out = engine.execute(small_campaign(3));
  EXPECT_EQ(out.status, CampaignOutcome::Status::Ok);
  EXPECT_EQ(out.cache_misses, 3u);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.metrics().counter("campaigns_shed").value(), 1u);
  EXPECT_EQ(engine.metrics().counter("campaigns_rejected").value(), 0u);
  EXPECT_FALSE(engine.run_one().has_value());  // the shed campaign is gone
}

TEST(CampaignEngine, AdmissionTraceEventsCarryTheCampaignId) {
  CampaignEngineConfig config;
  config.queue_capacity = 1;
  CampaignEngine engine{config};
  const CampaignRequest request = small_campaign();
  const std::uint64_t id =
      campaign_id(core::canonicalize_spec(request.spec), request.trials, request.base_seed);
  EXPECT_EQ(engine.submit(request), CampaignEngine::Admission::Admitted);
  EXPECT_EQ(engine.submit(request), CampaignEngine::Admission::Rejected);
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  for (const auto& e : engine.trace().events()) {
    if (e.stage == sim::Stage::CampaignAdmitted) {
      EXPECT_EQ(e.a, id);
      ++admitted;
    } else if (e.stage == sim::Stage::CampaignRejected) {
      EXPECT_EQ(e.a, id);
      ++rejected;
    }
  }
  EXPECT_EQ(admitted, 1u);
  EXPECT_EQ(rejected, 1u);
}

TEST(CampaignEngine, ObservabilityCountsMatchOutcomes) {
  CampaignEngine engine{{}};
  (void)engine.execute(small_campaign());
  (void)engine.execute(small_campaign());
  auto& m = engine.metrics();
  EXPECT_EQ(m.counter("cache_hits").value(), 4u);
  EXPECT_EQ(m.counter("cache_misses").value(), 4u);
  EXPECT_EQ(m.counter("trials_executed").value(), 4u);
  EXPECT_EQ(m.counter("campaigns_admitted").value(), 2u);
  EXPECT_EQ(m.histogram("campaign.trial_total_ms").count(), 8u);
  // One CampaignTrial trace event per trial per run, hit/miss in `detail`.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& e : engine.trace().events()) {
    if (e.stage != sim::Stage::CampaignTrial) continue;
    (e.detail == sim::kCampaignTrialHit ? hits : misses) += 1;
  }
  EXPECT_EQ(hits, 4u);
  EXPECT_EQ(misses, 4u);
}

// --- LineSession protocol --------------------------------------------------

TEST(LineSession, PingStatsAndUnknownCommands) {
  CampaignEngine engine{{}};
  LineSession session{engine};
  EXPECT_EQ(session.handle_text("PING\n"), "PONG\n");
  const std::string stats = session.handle_text("STATS\n");
  EXPECT_EQ(stats.rfind("STATS admitted=0 ", 0), 0u);
  const std::string bad = session.handle_text("FROB\n");
  EXPECT_EQ(bad.rfind("ERROR unknown command", 0), 0u);
}

TEST(LineSession, CampaignRoundTripAndCacheHitReplay) {
  CampaignEngine engine{{}};
  const std::string request = format_campaign_request(small_campaign(3));
  LineSession a{engine};
  const std::string cold = a.handle_text(request);
  LineSession b{engine};
  const std::string warm = b.handle_text(request);

  // Both responses: OK header, artifact, ENDARTIFACT, STATS, DONE.
  EXPECT_EQ(cold.rfind("OK id=", 0), 0u);
  EXPECT_NE(cold.find("\nENDARTIFACT\nSTATS "), std::string::npos);
  EXPECT_NE(cold.find("STATS hits=0 misses=3 executed=3\n"), std::string::npos);
  EXPECT_NE(warm.find("STATS hits=3 misses=0 executed=0\n"), std::string::npos);
  // The byte-stable artifact block (everything before the STATS trailer)
  // is identical across the cold and cache-hit paths.
  EXPECT_EQ(cold.substr(0, cold.find("STATS ")), warm.substr(0, warm.find("STATS ")));
}

TEST(LineSession, BadSpecYieldsError) {
  CampaignEngine engine{{}};
  LineSession session{engine};
  const std::string response =
      session.handle_text("CAMPAIGN trials=2 seed=1\nnot_a_knob = 3\nEND\n");
  EXPECT_EQ(response.rfind("ERROR ", 0), 0u);
  EXPECT_NE(response.find("DONE\n"), std::string::npos);
}

TEST(LineSession, QuitEndsTheSession) {
  CampaignEngine engine{{}};
  LineSession session{engine};
  bool open = session.consume_line("QUIT", [](const std::string&) {});
  EXPECT_FALSE(open);
}

}  // namespace
}  // namespace rst::server
