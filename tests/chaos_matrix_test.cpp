// Chaos-matrix campaign: each cell runs the emergency-brake trial under one
// FaultPlan configuration and asserts the degradation contract — either the
// chain still stops the vehicle (possibly late, possibly via the on-board
// fallback) or it fails in the explicitly expected way. The determinism
// suite proves a multi-fault plan replays bit-identically across reruns and
// thread counts; the legacy-equivalence suite proves FaultPlan clauses
// reproduce the old per-knob failure-injection scenarios on the same seeds.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "rst/core/experiment.hpp"
#include "rst/core/testbed.hpp"

namespace rst::core {
namespace {

using namespace rst::sim::literals;
using sim::FaultClause;
using sim::FaultKind;

TestbedConfig with_fault(std::uint64_t seed, const FaultClause& clause) {
  TestbedConfig config;
  config.seed = seed;
  config.fault_plan.clauses.push_back(clause);
  return config;
}

// --- Radio ---

TEST(ChaosMatrix, RadioBlackoutWholeTrialPreventsTheStop) {
  TestbedScenario scenario{
      with_fault(201, {FaultKind::RadioBlackout, "medium", 0_ms, 30'000_ms, 1.0})};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_TRUE(r.timed_out);
  // The chain worked up to the air interface: DENMs left the RSU but none
  // survived the blackout.
  EXPECT_GE(scenario.rsu().den().stats().denms_sent, 1u);
  EXPECT_EQ(scenario.obu().den().stats().denms_received, 0u);
}

TEST(ChaosMatrix, RadioBlackoutWindowRecoversViaDenmRepetition) {
  TestbedConfig config = with_fault(202, {FaultKind::RadioBlackout, "medium", 4'000_ms,
                                          8'000_ms, 1.0});
  config.hazard.denm_repetition = 40_ms;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(20_s);
  ASSERT_TRUE(r.stopped_by_denm);
  // The first transmission fell inside the blackout; a repetition delivered
  // after the window closed.
  EXPECT_GE(r.t_obu_receive, 8_s);
}

TEST(ChaosMatrix, MildAttenuationLeavesTheStopIntact) {
  TestbedScenario scenario{
      with_fault(203, {FaultKind::RadioAttenuation, "medium", 0_ms, 30'000_ms, 3.0})};
  const TrialResult r = scenario.run_emergency_brake_trial();
  EXPECT_TRUE(r.stopped_by_denm);
}

// --- Wired LAN ---

TEST(ChaosMatrix, TotalHttpLossPreventsTheStop) {
  TestbedScenario scenario{with_fault(92, {FaultKind::HttpLoss, "lan", 0_ms, 30'000_ms, 1.0})};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(scenario.dynamics().power_cut());
}

TEST(ChaosMatrix, PartialHttpLossDelaysButDoesNotBreakTheStop) {
  TestbedConfig config = with_fault(91, {FaultKind::HttpLoss, "lan", 0_ms, 3'600'000_ms, 0.3});
  config.lan.loss_timeout = 30_ms;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  EXPECT_GT(scenario.message_handler().stats().polls, 10u);
  EXPECT_GT(scenario.message_handler().stats().retries, 0u);
}

TEST(ChaosMatrix, HttpStallDelaysTheHttpLegsOfTheChain) {
  TestbedConfig nominal;
  nominal.seed = 210;
  const TrialResult base = TestbedScenario{nominal}.run_emergency_brake_trial();
  ASSERT_TRUE(base.stopped_by_denm);

  TestbedScenario scenario{with_fault(210, {FaultKind::HttpStall, "lan", 0_ms, 30'000_ms, 80.0})};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  // The /trigger_denm POST is held on the server for 80 ms, so step 2 -> 3
  // grows by the full stall. (The OBU poll leg is phase-dependent: the stall
  // can let an already-in-flight poll dispatch after the DENM lands, so we
  // anchor on the deterministic edge-node leg and the end-to-end instant.)
  EXPECT_GT(r.meas_detection_to_rsu_ms, base.meas_detection_to_rsu_ms + 60.0);
  EXPECT_GT(r.t_power_cut, base.t_power_cut);
}

// --- Perception ---

TEST(ChaosMatrix, TotalCameraDropPreventsDetection) {
  TestbedScenario scenario{with_fault(205, {FaultKind::CameraDrop, "camera", 0_ms, 30'000_ms, 1.0})};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_GT(scenario.camera().stats().frames_dropped, 0u);
  EXPECT_EQ(scenario.hazard().stats().crossings_detected, 0u);
}

TEST(ChaosMatrix, CameraFreezeHoldsStaleFramesAndMissesTheApproach) {
  // Frozen from before the vehicle enters recognition range: the replayed
  // content never shows the Action-Point crossing.
  TestbedScenario scenario{
      with_fault(206, {FaultKind::CameraFreeze, "camera", 0_ms, 30'000_ms, 1.0})};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_GT(scenario.camera().stats().frames_frozen, 0u);
}

TEST(ChaosMatrix, TotalYoloMissPreventsDetection) {
  TestbedScenario scenario{with_fault(207, {FaultKind::YoloMiss, "yolo", 0_ms, 30'000_ms, 1.0})};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_EQ(scenario.hazard().stats().crossings_detected, 0u);
}

TEST(ChaosMatrix, MisclassificationIsCaughtByTheKnownRoadUserGate) {
  // Control: the gate alone does not break nominal operation (the stop
  // sign's labels are all road users).
  TestbedConfig control;
  control.seed = 208;
  control.hazard.require_known_road_user = true;
  ASSERT_TRUE(TestbedScenario{control}.run_emergency_brake_trial().stopped_by_denm);

  TestbedConfig config =
      with_fault(208, {FaultKind::YoloMisclassify, "yolo", 0_ms, 30'000_ms, 1.0});
  config.hazard.require_known_road_user = true;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_GT(scenario.hazard().stats().detections_gated, 0u);
}

TEST(ChaosMatrix, ConfidenceCollapseIsCaughtByTheMinConfidenceGate) {
  TestbedConfig control;
  control.seed = 209;
  control.hazard.min_confidence = 0.5;
  ASSERT_TRUE(TestbedScenario{control}.run_emergency_brake_trial().stopped_by_denm);

  TestbedConfig config =
      with_fault(209, {FaultKind::YoloConfidence, "yolo", 0_ms, 30'000_ms, 0.9});
  config.hazard.min_confidence = 0.5;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_GT(scenario.hazard().stats().detections_gated, 0u);
}

// --- Collective perception under perception faults ---

TestbedConfig poisoned_cpm_config(std::uint64_t seed, double min_confidence) {
  TestbedConfig config;
  config.seed = seed;
  config.cpm_enable = true;
  config.cpm_interval = 100_ms;
  // The CPM fusion gate inherits hazard.min_confidence, so one knob guards
  // both the DENM decision and the collective-perception boundary.
  config.hazard.min_confidence = min_confidence;
  config.fault_plan.clauses = {
      {FaultKind::YoloMisclassify, "yolo", 0_ms, 30'000_ms, 1.0},
      {FaultKind::YoloConfidence, "yolo", 0_ms, 30'000_ms, 0.5},
  };
  return config;
}

TEST(ChaosMatrix, PoisonedPerceptsAreConfidenceGatedAtTheFusionBoundary) {
  // A misclassification burst plus a confidence collapse poisons every
  // detection the RSU would share. With the gate at 0.6 the collapsed
  // confidences (~0.44 from the 0.88 stop-sign profile) never clear it:
  // CPMs still flow, but nothing poisoned enters the OBU's fused picture
  // and nothing brakes the vehicle.
  TestbedScenario scenario{poisoned_cpm_config(215, 0.6)};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_TRUE(r.timed_out);
  EXPECT_GT(scenario.hazard().stats().detections_gated, 0u);

  const auto& rx = scenario.obu().cpm()->stats();
  EXPECT_GT(scenario.rsu().cpm()->stats().objects_published, 0u);
  EXPECT_GT(rx.cpms_received, 0u);
  EXPECT_GT(rx.objects_gated, 0u);
  EXPECT_EQ(rx.objects_fused, 0u);
  EXPECT_TRUE(scenario.obu().ldm().perceived_objects().empty());
  EXPECT_EQ(scenario.metrics().counter("cpm.emergency_stops").value(), 0u);
}

TEST(ChaosMatrix, OpenFusionGateAdmitsThePoisonedPercepts) {
  // Contrast cell: the same poisoned plan with the gate left open. The wrong
  // labels are not in the CPM class table, so they cross the wire as class
  // "unknown" and land in the OBU's fused picture with RSU provenance. Only
  // the ego-exclusion gate (the percept is the vehicle itself) keeps the
  // poison from braking the run; the DENM chain is label-agnostic with the
  // road-user gate off and stops the vehicle as usual.
  TestbedScenario scenario{poisoned_cpm_config(216, 0.0)};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);

  const auto& rx = scenario.obu().cpm()->stats();
  EXPECT_GT(rx.objects_fused, 0u);
  EXPECT_EQ(rx.objects_gated, 0u);
  bool saw_poison = false;
  for (const auto& obj : scenario.obu().ldm().perceived_objects()) {
    if (obj.source_station == scenario.config().rsu.station_id &&
        obj.classification == "unknown") {
      saw_poison = true;
    }
  }
  EXPECT_TRUE(saw_poison);
  EXPECT_EQ(scenario.metrics().counter("cpm.emergency_stops").value(), 0u);
}

// --- Positioning / nodes ---

TEST(ChaosMatrix, GnssDriftCorruptsAdvertisedPositionsNotTheStopPath) {
  TestbedConfig config = with_fault(211, {FaultKind::GnssDrift, "gnss", 0_ms, 30'000_ms, 0.5});
  config.use_gnss = true;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  // The infrastructure chain does not depend on the OBU's self-position.
  EXPECT_TRUE(r.stopped_by_denm);
  ASSERT_NE(scenario.gnss(), nullptr);
  EXPECT_GT(scenario.gnss()->error_m(), 0.5);
}

TEST(ChaosMatrix, ObuNodeDownKillsThePollPathNotTheRadio) {
  TestbedScenario scenario{with_fault(212, {FaultKind::NodeDown, "obu", 0_ms, 30'000_ms, 1.0})};
  const TrialResult r = scenario.run_emergency_brake_trial(12_s);
  EXPECT_FALSE(r.stopped_by_denm);
  // The DENM reached the OBU facilities over the air; only the crashed HTTP
  // API kept it from the vehicle application.
  EXPECT_GE(scenario.obu().den().stats().denms_received, 1u);
  EXPECT_GT(scenario.lan().requests_lost(), 0u);
  EXPECT_GT(scenario.message_handler().stats().failed_polls, 0u);
}

// --- Graceful degradation: the liveness watchdog ---

TEST(ChaosWatchdog, InfrastructureLossEngagesFailsafeAndArmsTheAeb) {
  TestbedConfig config = with_fault(213, {FaultKind::NodeDown, "obu", 0_ms, 30'000_ms, 1.0});
  config.message_handler.watchdog = true;
  config.message_handler.watchdog_timeout = 400_ms;
  config.enable_lidar_aeb = true;
  TestbedScenario scenario{config};
  // A stalled vehicle on the track, short of the Action Point: only the
  // on-board sensors can save the run once the infrastructure goes dark.
  scenario.add_static_obstacle({0.0, 6.0}, roadside::Presentation::StopSign);
  const TrialResult r = scenario.run_emergency_brake_trial();

  // Degradation engaged and never recovered...
  EXPECT_NE(scenario.trace().find_event(sim::Stage::WatchdogDegraded), nullptr);
  EXPECT_EQ(scenario.trace().find_event(sim::Stage::WatchdogRecovered), nullptr);
  EXPECT_EQ(scenario.message_handler().stats().watchdog_degradations, 1u);
  EXPECT_TRUE(scenario.message_handler().degraded());
  EXPECT_TRUE(scenario.planner().degraded());
  // ...and the armed AEB stopped the vehicle short of the obstacle, without
  // any DENM making it through.
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_FALSE(r.timed_out);
  ASSERT_NE(scenario.aeb(), nullptr);
  EXPECT_TRUE(scenario.aeb()->triggered());
  EXPECT_NE(scenario.trace().find_event(sim::Stage::AebTrigger), nullptr);
  EXPECT_TRUE(scenario.dynamics().stopped());
  EXPECT_LT(scenario.dynamics().position().y, 6.0);
}

TEST(ChaosWatchdog, ContactRestoredRecoversAndStopsViaDenm) {
  TestbedConfig config = with_fault(214, {FaultKind::NodeDown, "obu", 0_ms, 3'000_ms, 1.0});
  config.message_handler.watchdog = true;
  config.message_handler.watchdog_timeout = 400_ms;
  config.enable_lidar_aeb = true;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();

  // Degrade during the outage, recover when polling resumes, then the
  // normal network-aided chain stops the vehicle.
  EXPECT_NE(scenario.trace().find_event(sim::Stage::WatchdogDegraded), nullptr);
  EXPECT_NE(scenario.trace().find_event(sim::Stage::WatchdogRecovered), nullptr);
  EXPECT_EQ(scenario.message_handler().stats().watchdog_degradations, 1u);
  EXPECT_EQ(scenario.message_handler().stats().watchdog_recoveries, 1u);
  EXPECT_FALSE(scenario.message_handler().degraded());
  EXPECT_FALSE(scenario.planner().degraded());
  ASSERT_TRUE(r.stopped_by_denm);
  EXPECT_FALSE(scenario.aeb()->triggered());
  // The fault window itself is visible as a typed activation/recovery span.
  ASSERT_NE(scenario.fault_injector(), nullptr);
  EXPECT_EQ(scenario.fault_injector()->stats().activations, 1u);
  EXPECT_EQ(scenario.fault_injector()->stats().recoveries, 1u);
  EXPECT_EQ(scenario.trace().find_all_events(sim::Stage::FaultWindow).size(), 2u);
}

// --- Legacy-knob equivalence (the ported failure_injection scenarios) ---

void expect_identical_trials(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.stopped_by_denm, b.stopped_by_denm);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.t_cross_actual, b.t_cross_actual);
  EXPECT_EQ(a.t_detection, b.t_detection);
  EXPECT_EQ(a.t_rsu_send, b.t_rsu_send);
  EXPECT_EQ(a.t_obu_receive, b.t_obu_receive);
  EXPECT_EQ(a.t_power_cut, b.t_power_cut);
  EXPECT_EQ(a.t_halt, b.t_halt);
  EXPECT_EQ(a.meas_detection_to_rsu_ms, b.meas_detection_to_rsu_ms);
  EXPECT_EQ(a.meas_rsu_to_obu_ms, b.meas_rsu_to_obu_ms);
  EXPECT_EQ(a.meas_obu_to_actuator_ms, b.meas_obu_to_actuator_ms);
  EXPECT_EQ(a.meas_total_ms, b.meas_total_ms);
  EXPECT_EQ(a.braking_distance_m, b.braking_distance_m);
  EXPECT_EQ(a.stop_distance_to_camera_m, b.stop_distance_to_camera_m);
  EXPECT_EQ(a.detection_distance_m, b.detection_distance_m);
  EXPECT_EQ(a.speed_at_detection_mps, b.speed_at_detection_mps);
}

TEST(ChaosLegacyEquivalence, LossyLanClauseIsBitwiseEqualToTheKnob) {
  // failure_injection_test's LossyHttpLan scenario, same seed: an HttpLoss
  // clause draws from the LAN's own stream with p = max(knob, severity), so
  // a whole-run clause replays the legacy run draw-for-draw.
  TestbedConfig legacy;
  legacy.seed = 91;
  legacy.lan.loss_probability = 0.3;
  legacy.lan.loss_timeout = 30_ms;
  const TrialResult a = TestbedScenario{legacy}.run_emergency_brake_trial();

  TestbedConfig plan = with_fault(91, {FaultKind::HttpLoss, "lan", 0_ms, 3'600'000_ms, 0.3});
  plan.lan.loss_timeout = 30_ms;
  const TrialResult b = TestbedScenario{plan}.run_emergency_brake_trial();

  ASSERT_TRUE(a.stopped_by_denm);
  expect_identical_trials(a, b);
}

TEST(ChaosLegacyEquivalence, DeadLanClauseIsBitwiseEqualToTheKnob) {
  TestbedConfig legacy;
  legacy.seed = 92;
  legacy.lan.loss_probability = 1.0;
  const TrialResult a = TestbedScenario{legacy}.run_emergency_brake_trial(12_s);

  const TrialResult b = TestbedScenario{with_fault(92, {FaultKind::HttpLoss, "lan", 0_ms,
                                                        3'600'000_ms, 1.0})}
                            .run_emergency_brake_trial(12_s);
  EXPECT_TRUE(a.timed_out);
  expect_identical_trials(a, b);
}

TEST(ChaosLegacyEquivalence, FlakyDetectorContractHoldsViaYoloMissClause) {
  // failure_injection_test's FlakyDetector scenario. The legacy knob halves
  // the profile's detection probability inside the detector's own stream; a
  // YoloMiss clause suppresses from the injector stream instead, so the
  // equivalence here is contractual (same degradation outcome on the same
  // seed), not bitwise.
  TestbedConfig legacy;
  legacy.seed = 95;
  legacy.yolo.stop_sign.detection_probability = 0.5;
  const TrialResult a = TestbedScenario{legacy}.run_emergency_brake_trial(20_s);
  ASSERT_TRUE(a.stopped_by_denm);

  const TrialResult b = TestbedScenario{with_fault(95, {FaultKind::YoloMiss, "yolo", 0_ms,
                                                        3'600'000_ms, 0.5})}
                            .run_emergency_brake_trial(20_s);
  ASSERT_TRUE(b.stopped_by_denm);
  EXPECT_GT(b.stop_distance_to_camera_m, 0.0);
}

// --- Determinism: chaos runs are bit-reproducible from (seed, plan) ---

TestbedConfig multi_fault_config() {
  TestbedConfig config;
  config.seed = 42;
  config.use_gnss = true;
  config.lan.loss_timeout = 30_ms;
  config.fault_plan.clauses = {
      {FaultKind::RadioAttenuation, "medium", 1'000_ms, 4'000_ms, 6.0},
      {FaultKind::HttpLoss, "lan", 0_ms, 30'000_ms, 0.2},
      {FaultKind::CameraDrop, "camera", 2'000_ms, 5'000_ms, 0.3},
      {FaultKind::YoloMiss, "yolo", 0_ms, 30'000_ms, 0.3},
      {FaultKind::HttpStall, "lan", 1'000_ms, 2'000_ms, 20.0},
      {FaultKind::GnssDrift, "gnss", 0_ms, 30'000_ms, 0.3},
  };
  return config;
}

void expect_identical_summaries(const ExperimentSummary& a, const ExperimentSummary& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    expect_identical_trials(a.trials[i], b.trials[i]);
  }
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(format_table2(a), format_table2(b));
  EXPECT_EQ(format_table3(a), format_table3(b));
}

TEST(ChaosDeterminism, SixFaultPlanIsBitIdenticalAcrossRerunsAndThreadCounts) {
  const TestbedConfig config = multi_fault_config();
  const ExperimentSummary serial_a = run_emergency_brake_experiment(config, 8, 1);
  const ExperimentSummary serial_b = run_emergency_brake_experiment(config, 8, 1);
  const ExperimentSummary pooled = run_emergency_brake_experiment(config, 8, 8);
  expect_identical_summaries(serial_a, serial_b);
  expect_identical_summaries(serial_a, pooled);
}

TEST(ChaosDeterminism, PoisonedCpmCellReplaysBitIdentically) {
  // The fusion-boundary cell is itself a chaos run: same (seed, plan) must
  // replay event-for-event and stat-for-stat with CPM traffic on the air.
  const auto run_once = [] {
    TestbedScenario scenario{poisoned_cpm_config(215, 0.6)};
    const TrialResult r = scenario.run_emergency_brake_trial(12_s);
    std::vector<std::tuple<sim::SimTime, sim::Stage, std::uint64_t, std::uint16_t>> events;
    for (const auto& ev : scenario.trace().events()) {
      events.emplace_back(ev.when, ev.stage, ev.a, ev.detail);
    }
    const auto& rx = scenario.obu().cpm()->stats();
    return std::tuple{r.timed_out,       events,           rx.cpms_received,
                      rx.objects_gated,  rx.objects_fused,
                      scenario.rsu().cpm()->stats().objects_published};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_TRUE(std::get<0>(a));
  EXPECT_EQ(a, b);
}

TEST(ChaosDeterminism, FaultTimelineReplaysEventForEvent) {
  const auto run_events = [] {
    TestbedScenario scenario{multi_fault_config()};
    (void)scenario.run_emergency_brake_trial();
    std::vector<std::tuple<sim::SimTime, sim::Stage, std::uint64_t, std::uint16_t>> out;
    for (const auto& ev : scenario.trace().events()) {
      out.emplace_back(ev.when, ev.stage, ev.a, ev.detail);
    }
    return out;
  };
  const auto a = run_events();
  const auto b = run_events();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rst::core
