// City-scale experiment 3: channel busy ratio vs vehicle density. A small
// dense cell (every station in range of the monitor RSU) is swept over
// increasing vehicle counts; the measured CBR curve must rise monotonically
// with density, reactive DCC must pull the loaded channel back below its
// restrictive operating point, and the whole sweep must be bit-identical
// at 1 and 8 worker threads (and under RST_THREADS).

#include <gtest/gtest.h>

#include "rst/core/experiment.hpp"
#include "rst/scenario/city.hpp"

namespace rst {
namespace {

using scenario::CitySpec;
using sim::SimTime;

CitySpec dense_cell() {
  CitySpec spec;
  spec.seed = 21;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.block_m = 60.0;   // 120 m extent: everyone hears everyone
  spec.buildings = false;
  spec.rsu_every = 2;
  spec.max_rsus = 1;
  spec.obu_cam_interval = SimTime::milliseconds(20);  // 50 Hz offered load
  return spec;
}

const std::vector<int> kDensities = {2, 8, 16, 28};
constexpr auto kDuration = SimTime::seconds(3);

TEST(CityCbr, CbrRisesMonotonicallyWithDensity) {
  const auto curve = scenario::run_cbr_sweep(dense_cell(), kDensities, kDuration);
  ASSERT_EQ(curve.size(), kDensities.size());

  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].vehicles, kDensities[i]);
    EXPECT_GE(curve[i].cbr, 0.0);
    EXPECT_LE(curve[i].cbr, 1.0);
    if (i > 0) {
      EXPECT_GE(curve[i].cbr + 1e-9, curve[i - 1].cbr)
          << "CBR fell from " << curve[i - 1].cbr << " to " << curve[i].cbr << " when density rose "
          << curve[i - 1].vehicles << " -> " << curve[i].vehicles;
      EXPECT_GT(curve[i].frames_on_air, curve[i - 1].frames_on_air);
    }
  }
  // The sweep must actually load the channel, not flatline near zero.
  EXPECT_GT(curve.back().cbr, curve.front().cbr + 0.03);
}

TEST(CityCbr, DccCapsTheLoadedChannel) {
  const auto open_loop = scenario::run_cbr_sweep(dense_cell(), {kDensities.back()}, kDuration);

  CitySpec gated = dense_cell();
  gated.enable_dcc = true;
  const auto dcc = scenario::run_cbr_sweep(gated, {kDensities.back()}, kDuration);

  ASSERT_EQ(open_loop.size(), 1u);
  ASSERT_EQ(dcc.size(), 1u);
  EXPECT_LT(dcc[0].cbr, open_loop[0].cbr)
      << "DCC gatekeeping must reduce the channel load (" << dcc[0].cbr << " vs "
      << open_loop[0].cbr << ")";
  // TS 102 687 reactive table goes restrictive at CBR 0.60; the gated
  // channel must settle below that region (margin for smoothing lag).
  EXPECT_LT(dcc[0].cbr, 0.68);
  EXPECT_LT(dcc[0].frames_on_air, open_loop[0].frames_on_air);
}

TEST(CityCbr, SweepIsThreadCountInvariant) {
  const auto serial = scenario::run_cbr_sweep(dense_cell(), kDensities, kDuration, 1);
  const auto pooled = scenario::run_cbr_sweep(dense_cell(), kDensities, kDuration, 8);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "density cell " << kDensities[i]
                                    << " diverged across thread counts";
  }
  EXPECT_EQ(scenario::cbr_sweep_fingerprint(serial), scenario::cbr_sweep_fingerprint(pooled));

  // Honor the RST_THREADS contract as well: whatever the env selects must
  // reproduce the serial curve bit for bit.
  const auto env = scenario::run_cbr_sweep(dense_cell(), kDensities, kDuration,
                                           core::experiment_threads_from_env(4));
  EXPECT_EQ(scenario::cbr_sweep_fingerprint(serial), scenario::cbr_sweep_fingerprint(env));
}

}  // namespace
}  // namespace rst
