// City-scale experiment 1: deterministic coverage / RSSI map over the
// street grid. Asserts the City-Scale ITS-G5 invariants — receive power
// decays monotonically with distance along LOS street rays, every NLOS
// sample sits exactly its wall losses below the LOS budget at the same
// distance, and buildings only ever shrink coverage — plus bit-stable
// fingerprints across independent reconstructions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rst/scenario/city.hpp"

namespace rst {
namespace {

using scenario::CitySpec;
using scenario::CityScenario;

CitySpec small_city() {
  CitySpec spec;
  spec.seed = 7;
  spec.blocks_x = 3;
  spec.blocks_y = 3;
  spec.block_m = 100.0;
  spec.vehicles = 0;
  spec.rsu_every = 3;  // RSUs at the grid corners
  return spec;
}

/// LOS link budget at distance d for the spec's log-distance channel.
double los_budget_dbm(const CitySpec& spec, double d) {
  const double ref = 20.0 * std::log10(4.0 * M_PI * 5.9e9 / 299792458.0);
  const double loss = ref + 10.0 * spec.path_loss_exponent * std::log10(std::max(d, 0.1));
  return spec.tx_power_dbm + 2.0 * 2.0 - loss;  // 2 dBi antennas on both ends
}

TEST(CityCoverage, LosRaysDecayMonotonically) {
  CityScenario city{small_city()};
  const auto map = scenario::measure_coverage(city, 0, 10.0);
  ASSERT_FALSE(map.samples.empty());

  // Walk the RSU's own row eastwards: pure LOS, so RSSI must be
  // non-increasing with distance. The raster visits intersections from
  // both the row and the column passes, so sort by distance first.
  std::vector<scenario::CoverageSample> ray;
  for (const auto& s : map.samples) {
    if (s.pos.y != map.rsu_pos.y || s.pos.x < map.rsu_pos.x) continue;
    if (s.walls_crossed != 0) continue;
    ray.push_back(s);
  }
  std::sort(ray.begin(), ray.end(),
            [](const auto& a, const auto& b) { return a.distance_m < b.distance_m; });
  ASSERT_GE(ray.size(), 20u);
  for (std::size_t i = 1; i < ray.size(); ++i) {
    EXPECT_LE(ray[i].rssi_dbm, ray[i - 1].rssi_dbm + 1e-9)
        << "RSSI rose from " << ray[i - 1].rssi_dbm << " to " << ray[i].rssi_dbm << " at d="
        << ray[i].distance_m;
  }
}

TEST(CityCoverage, NlosSamplesSitBelowLosBudgetByWallLoss) {
  const CitySpec spec = small_city();
  CityScenario city{spec};
  const auto map = scenario::measure_coverage(city, 0, 10.0);

  int nlos = 0;
  for (const auto& s : map.samples) {
    const double los = los_budget_dbm(spec, s.distance_m);
    if (s.walls_crossed == 0) {
      EXPECT_NEAR(s.rssi_dbm, los, 1e-6);
    } else {
      ++nlos;
      const double expected = los - static_cast<double>(s.walls_crossed) * spec.building_loss_db;
      EXPECT_NEAR(s.rssi_dbm, expected, 1e-6)
          << "at (" << s.pos.x << "," << s.pos.y << ") walls=" << s.walls_crossed;
      EXPECT_LE(s.rssi_dbm, los - spec.building_loss_db + 1e-6);
    }
  }
  EXPECT_GT(nlos, 0) << "the raster never crossed a building";
}

TEST(CityCoverage, BuildingsOnlyShrinkCoverage) {
  CitySpec with = small_city();
  CitySpec without = small_city();
  without.buildings = false;

  CityScenario city_with{with};
  CityScenario city_without{without};
  const auto map_with = scenario::measure_coverage(city_with, 0, 10.0);
  const auto map_without = scenario::measure_coverage(city_without, 0, 10.0);

  EXPECT_GT(map_with.covered_fraction, 0.0);
  EXPECT_LE(map_with.covered_fraction, map_without.covered_fraction);
  EXPECT_LE(map_with.covered_fraction, 1.0);
  ASSERT_EQ(map_with.samples.size(), map_without.samples.size());
  for (std::size_t i = 0; i < map_with.samples.size(); ++i) {
    EXPECT_LE(map_with.samples[i].rssi_dbm, map_without.samples[i].rssi_dbm + 1e-9);
  }
}

TEST(CityCoverage, OverlappingRsusCoverTheCorridor) {
  CitySpec spec = small_city();
  spec.rsu_every = 1;  // an RSU at every intersection: full overlap
  CityScenario city{spec};
  ASSERT_EQ(city.rsu_count(), 16u);

  // Best-server coverage: every street sample must be covered by at least
  // one RSU (the grid pitch of 100 m sits well inside the ~200 m range).
  std::vector<scenario::CoverageMap> maps;
  maps.reserve(city.rsu_count());
  for (std::size_t i = 0; i < city.rsu_count(); ++i) {
    maps.push_back(scenario::measure_coverage(city, i, 25.0));
  }
  const std::size_t n = maps[0].samples.size();
  for (std::size_t s = 0; s < n; ++s) {
    double best = -1e9;
    for (const auto& m : maps) best = std::max(best, m.samples[s].rssi_dbm);
    EXPECT_GE(best, maps[0].sensitivity_dbm)
        << "street point (" << maps[0].samples[s].pos.x << "," << maps[0].samples[s].pos.y
        << ") is a dead zone";
  }
}

TEST(CityCoverage, FingerprintIsReproducible) {
  CityScenario a{small_city()};
  CityScenario b{small_city()};
  const auto fp_a = scenario::measure_coverage(a, 0, 10.0).fingerprint();
  const auto fp_b = scenario::measure_coverage(b, 0, 10.0).fingerprint();
  EXPECT_EQ(fp_a, fp_b);

  CitySpec other = small_city();
  other.path_loss_exponent = 3.5;
  CityScenario c{other};
  EXPECT_NE(fp_a, scenario::measure_coverage(c, 0, 10.0).fingerprint());
}

}  // namespace
}  // namespace rst
