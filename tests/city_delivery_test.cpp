// City-scale experiment 4: multi-hop GBC DENM delivery across a coverage
// gap. A single RSU at the west end of a long corridor triggers a
// geo-broadcast DENM scoped to the whole corridor. A parked relay chain
// under its coverage must receive it through GN forwarding; a parked
// cluster across a real radio gap must only be reachable once a crossing
// vehicle carries the DENM over and keep-alive-forwards it (the
// store-carry-forward substrate).

#include <gtest/gtest.h>

#include "rst/scenario/city.hpp"

namespace rst {
namespace {

using scenario::CitySpec;
using sim::SimTime;

CitySpec gap_corridor() {
  CitySpec spec;
  spec.seed = 31;
  spec.blocks_x = 6;
  spec.blocks_y = 2;
  spec.block_m = 120.0;  // 720 m corridor
  spec.path_loss_exponent = 3.5;  // street canyon: ~131 m link budget range
  spec.vehicle_speed_mps = 8.0;
  return spec;
}

// The mover crosses 720 m at 8 m/s (90 s) and must linger in the far
// cluster long enough for keep-alive retransmissions.
constexpr auto kDuration = SimTime::seconds(100);

TEST(CityDelivery, CoverageGapIsReal) {
  const auto report = scenario::run_delivery_experiment(gap_corridor(), SimTime::seconds(1));
  // Deterministic precondition: the best direct RSU -> far-cluster link
  // budget must sit far below receiver sensitivity, otherwise the
  // experiment would not prove anything about forwarding.
  EXPECT_LT(report.best_direct_far_budget_dbm, -100.0);
}

TEST(CityDelivery, ForwardingAndCarryDeliverAcrossTheGap) {
  const auto report = scenario::run_delivery_experiment(gap_corridor(), kDuration);

  ASSERT_GT(report.near_targets, 0);
  ASSERT_GT(report.far_targets, 0);

  // Inside coverage the relay chain must be fully served, quickly.
  EXPECT_EQ(report.near_delivered, report.near_targets);
  EXPECT_GT(report.first_near_delivery, SimTime::zero());
  EXPECT_LT(report.first_near_delivery, SimTime::seconds(5));

  // Across the gap only the carrier can deliver: everyone in the far
  // cluster eventually gets the DENM, but only after the mover has
  // physically crossed — tens of seconds after the near chain.
  EXPECT_EQ(report.far_delivered, report.far_targets);
  EXPECT_GT(report.first_far_delivery, report.first_near_delivery + SimTime::seconds(10));

  // Both mechanisms must actually have fired.
  EXPECT_GT(report.gn_forwarded, 0u) << "multi-hop GN forwarding never happened";
  EXPECT_GT(report.kaf_retransmissions, 0u) << "keep-alive forwarding never happened";
}

TEST(CityDelivery, ShortRunDeliversNearButNotFar) {
  // Before the mover can possibly reach the far cluster, the gap must
  // still be unbridged — delivery there must come from carry, not leakage.
  const auto report = scenario::run_delivery_experiment(gap_corridor(), SimTime::seconds(20));
  EXPECT_EQ(report.near_delivered, report.near_targets);
  EXPECT_EQ(report.far_delivered, 0);
}

TEST(CityDelivery, ReportIsBitStableAcrossReruns) {
  const auto a = scenario::run_delivery_experiment(gap_corridor(), kDuration);
  const auto b = scenario::run_delivery_experiment(gap_corridor(), kDuration);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.first_far_delivery, b.first_far_delivery);
  EXPECT_EQ(a.kaf_retransmissions, b.kaf_retransmissions);
}

}  // namespace
}  // namespace rst
