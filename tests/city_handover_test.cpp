// City-scale experiment 2: RSU <-> OBU handover along the arterial
// corridor. A probe OBU drives past a line of beaconing RSUs; the serving
// RSU (hysteresis rule over CAM RSSI) must progress west to east, hand
// over at least twice, and never leave the OBU without service for longer
// than a few beacon periods.

#include <gtest/gtest.h>

#include <algorithm>

#include "rst/scenario/city.hpp"

namespace rst {
namespace {

using scenario::CitySpec;
using sim::SimTime;

CitySpec corridor_city() {
  CitySpec spec;
  spec.seed = 11;
  spec.blocks_x = 4;
  spec.blocks_y = 2;
  spec.block_m = 120.0;
  spec.vehicles = 0;  // the experiment adds the probe OBU itself
  spec.rsu_corridor_only = true;
  spec.rsu_every = 2;  // corridor RSUs at x = 0, 240, 480
  spec.vehicle_speed_mps = 12.0;
  return spec;
}

// One corridor pass: 480 m at 12 m/s.
constexpr auto kDriveTime = SimTime::seconds(40);

TEST(CityHandover, ServingRsuProgressesAlongTheCorridor) {
  const auto report = scenario::run_handover_experiment(corridor_city(), kDriveTime);

  ASSERT_FALSE(report.receptions.empty());
  ASSERT_GE(report.handovers(), 2) << "the drive must cross at least two cell boundaries";

  // The serving sequence must be corridor RSUs in strictly increasing
  // station-id order — placement is west to east, so any regression would
  // mean the hysteresis rule flapped backwards.
  for (std::size_t i = 0; i < report.serving_sequence.size(); ++i) {
    EXPECT_GE(report.serving_sequence[i], scenario::CityScenario::kRsuIdBase);
    if (i > 0) {
      EXPECT_GT(report.serving_sequence[i], report.serving_sequence[i - 1])
          << "serving RSU moved backwards at step " << i;
    }
  }
  EXPECT_EQ(report.serving_sequence.front(), scenario::CityScenario::kRsuIdBase);
}

TEST(CityHandover, ServiceGapStaysBounded) {
  const auto report = scenario::run_handover_experiment(corridor_city(), kDriveTime);

  // RSUs beacon every 100 ms and coverage overlaps, so even across a
  // handover the OBU must hear *some* RSU within a handful of periods.
  EXPECT_GT(report.max_service_gap, SimTime::zero());
  EXPECT_LE(report.max_service_gap, SimTime::milliseconds(500))
      << "service gap " << report.max_service_gap.to_string();
  // The serving RSU itself may fade towards the cell edge, but never for
  // longer than a second before the hysteresis rule must have switched.
  EXPECT_LE(report.max_serving_gap, SimTime::seconds(1))
      << "serving gap " << report.max_serving_gap.to_string();
}

TEST(CityHandover, EveryCorridorRsuIsHeard) {
  const auto report = scenario::run_handover_experiment(corridor_city(), kDriveTime);
  std::vector<its::StationId> heard;
  for (const auto& r : report.receptions) {
    if (std::find(heard.begin(), heard.end(), r.rsu) == heard.end()) heard.push_back(r.rsu);
  }
  EXPECT_EQ(heard.size(), 3u) << "the drive should pass through all three corridor cells";
}

TEST(CityHandover, ReportIsBitStableAcrossReruns) {
  const auto a = scenario::run_handover_experiment(corridor_city(), kDriveTime);
  const auto b = scenario::run_handover_experiment(corridor_city(), kDriveTime);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.receptions.size(), b.receptions.size());
  EXPECT_EQ(a.serving_sequence, b.serving_sequence);

  CitySpec reseeded = corridor_city();
  reseeded.seed = 12;
  const auto c = scenario::run_handover_experiment(reseeded, kDriveTime);
  EXPECT_NE(a.fingerprint(), c.fingerprint()) << "the seed must reach the stochastic stack";
}

}  // namespace
}  // namespace rst
