// Property test: the word-at-a-time BitWriter/BitReader against a
// bit-by-bit reference implementation (the codec as originally written,
// kept here as the oracle). Any divergence in the produced byte stream or
// in the decoded values is a bug in the optimized fast paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "rst/asn1/bitbuffer.hpp"

namespace {

using rst::asn1::BitReader;
using rst::asn1::BitWriter;
using rst::asn1::DecodeError;

/// The original bit-at-a-time writer, verbatim semantics: MSB-first,
/// one bit appended per call.
class ReferenceWriter {
 public:
  void write_bit(bool bit) {
    const std::size_t byte = bit_count_ / 8;
    if (byte >= bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte] |= static_cast<std::uint8_t>(0x80u >> (bit_count_ % 8));
    ++bit_count_;
  }
  void write_bits(std::uint64_t value, std::size_t nbits) {
    for (std::size_t i = 0; i < nbits; ++i) {
      write_bit(((value >> (nbits - 1 - i)) & 1u) != 0);
    }
  }
  void write_bytes(const std::vector<std::uint8_t>& data) {
    for (const auto b : data) write_bits(b, 8);
  }
  [[nodiscard]] std::vector<std::uint8_t> finish() const { return bytes_; }
  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_{0};
};

/// The original bit-at-a-time reader.
class ReferenceReader {
 public:
  explicit ReferenceReader(const std::vector<std::uint8_t>& bytes)
      : bytes_{bytes}, size_bits_{bytes.size() * 8} {}
  bool read_bit() {
    if (pos_ >= size_bits_) throw DecodeError{"reference: out of data"};
    const bool bit = (bytes_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }
  std::uint64_t read_bits(std::size_t nbits) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < nbits; ++i) v = (v << 1) | (read_bit() ? 1u : 0u);
    return v;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t size_bits_;
  std::size_t pos_{0};
};

/// One randomized operation of a write script.
struct Op {
  enum class Kind { Bit, Bits, Bytes } kind;
  std::uint64_t value{};
  std::size_t nbits{};
  std::vector<std::uint8_t> bytes;
};

std::vector<Op> random_script(std::mt19937_64& rng, std::size_t n_ops) {
  std::uniform_int_distribution<int> kind_dist{0, 2};
  std::uniform_int_distribution<std::size_t> nbits_dist{1, 64};
  std::uniform_int_distribution<std::size_t> len_dist{0, 40};
  std::vector<Op> script;
  script.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    Op op;
    switch (kind_dist(rng)) {
      case 0:
        op.kind = Op::Kind::Bit;
        op.value = rng() & 1u;
        break;
      case 1:
        op.kind = Op::Kind::Bits;
        op.nbits = nbits_dist(rng);
        op.value = rng();
        break;
      default: {
        op.kind = Op::Kind::Bytes;
        const auto len = len_dist(rng);
        op.bytes.resize(len);
        for (auto& b : op.bytes) b = static_cast<std::uint8_t>(rng());
        break;
      }
    }
    script.push_back(std::move(op));
  }
  return script;
}

std::uint64_t masked(std::uint64_t value, std::size_t nbits) {
  return nbits >= 64 ? value : value & ((std::uint64_t{1} << nbits) - 1);
}

TEST(CodecReference, RandomScriptsProduceIdenticalBytes) {
  std::mt19937_64 rng{0xC0DEC5EEDULL};
  for (int trial = 0; trial < 200; ++trial) {
    const auto script = random_script(rng, 1 + trial % 50);

    BitWriter fast;
    ReferenceWriter ref;
    for (const auto& op : script) {
      switch (op.kind) {
        case Op::Kind::Bit:
          fast.write_bit(op.value != 0);
          ref.write_bit(op.value != 0);
          break;
        case Op::Kind::Bits:
          fast.write_bits(op.value, op.nbits);
          ref.write_bits(op.value, op.nbits);
          break;
        case Op::Kind::Bytes:
          fast.write_bytes(op.bytes.data(), op.bytes.size());
          ref.write_bytes(op.bytes);
          break;
      }
    }
    ASSERT_EQ(fast.bit_count(), ref.bit_count()) << "trial " << trial;
    ASSERT_EQ(fast.finish(), ref.finish()) << "trial " << trial;
  }
}

TEST(CodecReference, RandomScriptsDecodeIdentically) {
  std::mt19937_64 rng{0xDEC0DE5EEDULL};
  for (int trial = 0; trial < 200; ++trial) {
    // Write with the fast writer, then read the field sequence back with
    // both readers and compare every decoded value.
    const auto script = random_script(rng, 1 + trial % 50);
    BitWriter w;
    for (const auto& op : script) {
      switch (op.kind) {
        case Op::Kind::Bit:
          w.write_bit(op.value != 0);
          break;
        case Op::Kind::Bits:
          w.write_bits(op.value, op.nbits);
          break;
        case Op::Kind::Bytes:
          w.write_bytes(op.bytes.data(), op.bytes.size());
          break;
      }
    }
    const auto buf = std::move(w).finish();

    BitReader fast{buf.data(), buf.size()};
    ReferenceReader ref{buf};
    for (const auto& op : script) {
      switch (op.kind) {
        case Op::Kind::Bit:
          ASSERT_EQ(fast.read_bit(), ref.read_bit() != 0) << "trial " << trial;
          break;
        case Op::Kind::Bits: {
          const auto got = fast.read_bits(op.nbits);
          ASSERT_EQ(got, ref.read_bits(op.nbits)) << "trial " << trial;
          ASSERT_EQ(got, masked(op.value, op.nbits)) << "trial " << trial;
          break;
        }
        case Op::Kind::Bytes: {
          std::vector<std::uint8_t> got(op.bytes.size());
          fast.read_bytes(got.data(), got.size());
          std::vector<std::uint8_t> want(op.bytes.size());
          for (auto& b : want) b = static_cast<std::uint8_t>(ref.read_bits(8));
          ASSERT_EQ(got, want) << "trial " << trial;
          ASSERT_EQ(got, op.bytes) << "trial " << trial;
          break;
        }
      }
    }
  }
}

TEST(CodecReference, ValuesRoundTripThroughFastPaths) {
  // Every (value, nbits) written comes back masked to nbits.
  std::mt19937_64 rng{0xFEEDULL};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::pair<std::uint64_t, std::size_t>> fields;
    BitWriter w;
    // Deliberately misalign the stream so head/body/tail splits all occur.
    std::uniform_int_distribution<std::size_t> lead{0, 15};
    const auto lead_bits = lead(rng);
    w.write_bits(0x5555, lead_bits);
    for (int i = 0; i < 64; ++i) {
      const std::size_t nbits = 1 + rng() % 64;
      const std::uint64_t value = rng();
      fields.emplace_back(value, nbits);
      w.write_bits(value, nbits);
    }
    const auto buf = std::move(w).finish();
    BitReader r{buf.data(), buf.size()};
    (void)r.read_bits(lead_bits);
    for (const auto& [value, nbits] : fields) {
      ASSERT_EQ(r.read_bits(nbits), masked(value, nbits));
    }
  }
}

TEST(CodecReference, ReaderThrowsPastEnd) {
  BitWriter w;
  w.write_bits(0xAB, 8);
  const auto buf = std::move(w).finish();
  BitReader r{buf.data(), buf.size()};
  EXPECT_EQ(r.read_bits(8), 0xABu);
  EXPECT_THROW((void)r.read_bits(1), DecodeError);
}

TEST(CodecReference, MoveOutFinishMatchesCopyingFinish) {
  const std::vector<std::uint8_t> data(64, 0xCD);
  BitWriter w{64};
  w.write_bytes(data.data(), data.size());
  const auto copy = w.finish();               // const& overload
  const auto moved = std::move(w).finish();   // && overload, steals the buffer
  EXPECT_EQ(copy, moved);
  EXPECT_EQ(copy, data);
}

}  // namespace
