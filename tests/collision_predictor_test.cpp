#include <gtest/gtest.h>

#include <cmath>

#include "rst/roadside/collision_predictor.hpp"
#include "rst/roadside/tracker.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/stats.hpp"

namespace rst::roadside {
namespace {

using namespace rst::sim::literals;

TEST(RangeTracker, FirstMeasurementSeedsTheTrack) {
  RangeTracker tracker;
  const auto est = tracker.update(1, 5.0, 0_ms);
  EXPECT_DOUBLE_EQ(est.range_m, 5.0);
  EXPECT_DOUBLE_EQ(est.range_rate_mps, 0.0);
  EXPECT_EQ(est.updates, 1u);
  EXPECT_EQ(tracker.active_tracks(), 1u);
}

TEST(RangeTracker, ConvergesOnConstantVelocityTarget) {
  RangeTracker tracker;
  sim::RandomStream noise{7, "trk"};
  // Target approaches at -1.0 m/s, measured at 4 Hz with 3 cm noise.
  double true_range = 8.0;
  RangeEstimate est;
  for (int i = 0; i < 40; ++i) {
    const auto t = 250_ms * i;
    est = tracker.update(1, true_range + noise.normal(0, 0.03), t);
    true_range -= 0.25;
  }
  EXPECT_NEAR(est.range_rate_mps, -1.0, 0.08);
  EXPECT_NEAR(est.range_m, true_range + 0.25, 0.1);
}

TEST(RangeTracker, SmootherThanFiniteDifference) {
  sim::RandomStream noise{8, "trk2"};
  RangeTracker tracker;
  sim::RunningStats filtered;
  sim::RunningStats raw_diff;
  double true_range = 10.0;
  double prev_meas = 0;
  for (int i = 0; i < 200; ++i) {
    const double meas = true_range + noise.normal(0, 0.03);
    const auto est = tracker.update(1, meas, 250_ms * i);
    if (i >= 10) {  // after warm-up
      filtered.add(est.range_rate_mps);
      raw_diff.add((meas - prev_meas) / 0.25);
    }
    prev_meas = meas;
    true_range -= 0.25;
  }
  EXPECT_NEAR(filtered.mean(), -1.0, 0.05);
  EXPECT_LT(filtered.stddev(), raw_diff.stddev() / 2.0);
}

TEST(RangeTracker, PredictExtrapolatesAndExpires) {
  RangeTracker tracker;
  // Converge on a -1 m/s track first (the filter is deliberately sluggish).
  RangeEstimate est;
  for (int i = 0; i < 20; ++i) {
    est = tracker.update(1, 10.0 - 0.5 * i, 500_ms * i);
  }
  const auto last_stamp = est.stamp;
  const auto later = tracker.predict(1, last_stamp + 500_ms);
  ASSERT_TRUE(later.has_value());
  EXPECT_LT(later->range_m, est.range_m - 0.3);  // extrapolated along the rate
  EXPECT_FALSE(tracker.predict(1, last_stamp + 5_s).has_value());  // stale
  EXPECT_FALSE(tracker.predict(99, 1_s).has_value());             // unknown id
}

TEST(RangeTracker, GapResetsTheTrack) {
  RangeTracker tracker;
  (void)tracker.update(1, 6.0, 0_ms);
  (void)tracker.update(1, 5.5, 500_ms);
  // 3 s silence, then a wildly different range: treated as a new track.
  const auto est = tracker.update(1, 2.0, 3500_ms);
  EXPECT_EQ(est.updates, 1u);
  EXPECT_DOUBLE_EQ(est.range_rate_mps, 0.0);
}

TEST(Cpa, HeadOnCollisionCourse) {
  // Two objects on a head-on course, 10 m apart, closing at 2 m/s.
  const auto cpa = closest_point_of_approach({0, 0}, {0, 1}, {0, 10}, {0, -1});
  EXPECT_NEAR(cpa.t_cpa_s, 5.0, 1e-9);
  EXPECT_NEAR(cpa.d_cpa_m, 0.0, 1e-9);
}

TEST(Cpa, CrossingTrajectories) {
  // Object A eastbound, B northbound, meeting at the origin at t=4.
  const auto cpa = closest_point_of_approach({-4, 0}, {1, 0}, {0, -8}, {0, 2});
  EXPECT_NEAR(cpa.t_cpa_s, 4.0, 0.2);
  EXPECT_LT(cpa.d_cpa_m, 0.5);
}

TEST(Cpa, DivergingTracksClampToNow) {
  const auto cpa = closest_point_of_approach({0, 0}, {0, -1}, {0, 5}, {0, 1});
  EXPECT_DOUBLE_EQ(cpa.t_cpa_s, 0.0);
  EXPECT_DOUBLE_EQ(cpa.d_cpa_m, 5.0);
}

TEST(Cpa, ParallelSameVelocityKeepsSeparation) {
  const auto cpa = closest_point_of_approach({0, 0}, {1, 1}, {3, 4}, {1, 1});
  EXPECT_DOUBLE_EQ(cpa.t_cpa_s, 0.0);
  EXPECT_DOUBLE_EQ(cpa.d_cpa_m, 5.0);
}

its::LdmVehicleEntry vehicle_entry(its::StationId id, geo::Vec2 pos, double heading_rad,
                                   double speed) {
  its::LdmVehicleEntry e;
  e.station_id = id;
  e.position = pos;
  e.heading_rad = heading_rad;
  e.speed_mps = speed;
  return e;
}

TEST(CollisionPredictor, FlagsCrossingConflict) {
  CollisionPredictor predictor;
  // Vehicle northbound at 1.2 m/s reaching (0,8) in ~4 s; object westbound
  // reaching the same point at the same time.
  const auto threat = predictor.assess({4.8, 8.0}, {-1.2, 0.0},
                                       {vehicle_entry(42, {0, 3.2}, 0.0, 1.2)});
  ASSERT_TRUE(threat.has_value());
  EXPECT_EQ(threat->station_id, 42u);
  EXPECT_NEAR(threat->t_cpa_s, 4.0, 0.3);
  EXPECT_LT(threat->d_cpa_m, 0.5);
  EXPECT_NEAR(threat->predicted_conflict_point.x, 0.0, 0.6);
  EXPECT_NEAR(threat->predicted_conflict_point.y, 8.0, 0.6);
}

TEST(CollisionPredictor, IgnoresSafeAndFarTraffic) {
  CollisionPredictor predictor;
  // Misses by 3 m laterally.
  EXPECT_FALSE(predictor.assess({4.8, 11.0}, {-1.2, 0.0},
                                {vehicle_entry(42, {0, 3.2}, 0.0, 1.2)})
                   .has_value());
  // Conflict beyond the horizon (30 s away).
  EXPECT_FALSE(predictor
                   .assess({36.0, 8.0}, {-1.2, 0.0}, {vehicle_entry(42, {0, -28}, 0.0, 1.2)})
                   .has_value());
  // Outside the pairing radius entirely.
  EXPECT_FALSE(predictor
                   .assess({500.0, 8.0}, {-1.2, 0.0}, {vehicle_entry(42, {0, 3.2}, 0.0, 1.2)})
                   .has_value());
}

TEST(CollisionPredictor, PicksMostImminentThreat) {
  CollisionPredictor predictor;
  const auto threat = predictor.assess(
      {2.4, 8.0}, {-1.2, 0.0},
      {vehicle_entry(1, {0, 8.0 - 4 * 1.2}, 0.0, 1.2),   // meets in ~4 s
       vehicle_entry(2, {0, 8.0 - 2 * 1.2}, 0.0, 1.2)}); // meets in ~2 s
  ASSERT_TRUE(threat.has_value());
  EXPECT_EQ(threat->station_id, 2u);
}

}  // namespace
}  // namespace rst::roadside
