#include <gtest/gtest.h>

#include "rst/core/config_io.hpp"

namespace rst::core {
namespace {

using namespace rst::sim::literals;

TEST(ConfigIo, AppliesKnownKeys) {
  TestbedConfig config;
  const std::string text =
      "seed = 77\n"
      "target_speed_mps = 0.9\n"
      "action_point_m = 2.0\n"
      "poll_period_ms = 25\n"
      "detection_fps = 10\n"
      "warning_bearer = urllc\n"
      "use_gnss = true\n"
      "enable_lidar_aeb = on\n"
      "anonymize_detections = 1\n"
      "denm_repetition_ms = 80\n"
      "trigger_mode = cpa\n"
      "shadowing_sigma_db = 4.5\n"
      "path_loss_exponent = 2.4\n";
  const auto n = apply_config_overrides(config, text);
  EXPECT_EQ(n, 13u);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_DOUBLE_EQ(config.planner.target_speed_mps, 0.9);
  EXPECT_DOUBLE_EQ(config.hazard.action_point_distance_m, 2.0);
  EXPECT_EQ(config.message_handler.poll_period, 25_ms);
  EXPECT_EQ(config.detection.processing_period, 100_ms);
  EXPECT_EQ(config.warning_path, WarningPath::CellularUrllc);
  EXPECT_TRUE(config.use_gnss);
  EXPECT_TRUE(config.enable_lidar_aeb);
  EXPECT_TRUE(config.detection.anonymize_detections);
  ASSERT_TRUE(config.hazard.denm_repetition.has_value());
  EXPECT_EQ(*config.hazard.denm_repetition, 80_ms);
  EXPECT_EQ(config.hazard.trigger_mode, roadside::HazardTriggerMode::CpaPrediction);
  EXPECT_DOUBLE_EQ(config.shadowing_sigma_db, 4.5);
  EXPECT_DOUBLE_EQ(config.path_loss_exponent, 2.4);
  // The resulting config is runnable.
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  TestbedConfig config;
  EXPECT_EQ(apply_config_overrides(config, "# all comments\n\n   \n# seed = 5\n"), 0u);
  EXPECT_EQ(config.seed, 1u);
  EXPECT_EQ(apply_config_overrides(config, "seed = 5 # trailing comment\n"), 1u);
  EXPECT_EQ(config.seed, 5u);
}

TEST(ConfigIo, UnknownKeyAndBadValuesThrow) {
  TestbedConfig config;
  EXPECT_THROW((void)apply_config_overrides(config, "no_such_key = 1\n"), std::invalid_argument);
  EXPECT_THROW((void)apply_config_overrides(config, "seed = abc\n"), std::invalid_argument);
  EXPECT_THROW((void)apply_config_overrides(config, "use_gnss = maybe\n"), std::invalid_argument);
  EXPECT_THROW((void)apply_config_overrides(config, "warning_bearer = 6g\n"),
               std::invalid_argument);
  EXPECT_THROW((void)apply_config_overrides(config, "just a line\n"), std::invalid_argument);
}

TEST(ConfigIo, MediumGeometryAndPartitionKnobsApplyAndValidate) {
  TestbedConfig config;
  const auto n = apply_config_overrides(config,
                                        "medium_spatial_index = true\n"
                                        "medium_grid_cell_m = 75.5\n"
                                        "medium_partitions = 4\n");
  EXPECT_EQ(n, 3u);
  EXPECT_TRUE(config.medium_spatial_index);
  EXPECT_DOUBLE_EQ(config.medium_grid_cell_m, 75.5);
  EXPECT_EQ(config.medium_partitions, 4);
  EXPECT_NO_THROW(config.validate());

  // 0 is the "derive from the power floor" / "adopt the environment"
  // sentinel for both knobs and must stay valid.
  (void)apply_config_overrides(config, "medium_grid_cell_m = 0\nmedium_partitions = 0\n");
  EXPECT_NO_THROW(config.validate());

  EXPECT_THROW((void)apply_config_overrides(config, "medium_grid_cell_m = nope\n"),
               std::invalid_argument);
  (void)apply_config_overrides(config, "medium_grid_cell_m = -1\n");
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.medium_grid_cell_m = 0.0;
  (void)apply_config_overrides(config, "medium_partitions = -2\n");
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ConfigIo, ZeroRepetitionDisables) {
  TestbedConfig config;
  config.hazard.denm_repetition = 100_ms;
  (void)apply_config_overrides(config, "denm_repetition_ms = 0\n");
  EXPECT_FALSE(config.hazard.denm_repetition.has_value());
}

TEST(ConfigIo, KeyListingIsCompleteAndSorted) {
  const auto keys = config_override_keys();
  EXPECT_GE(keys.size(), 13u);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1].first, keys[i].first);
  }
  for (const auto& [key, help] : keys) {
    EXPECT_FALSE(help.empty()) << key;
    // Every advertised key must round-trip through the parser with a
    // plausible value... covered key-by-key in AppliesKnownKeys.
  }
}

}  // namespace
}  // namespace rst::core
