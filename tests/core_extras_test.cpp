#include <gtest/gtest.h>

#include <cmath>

#include "rst/cellular/cellular_link.hpp"
#include "rst/core/platoon.hpp"
#include "rst/core/scale_model.hpp"

namespace rst::core {
namespace {

using namespace rst::sim::literals;

TEST(ScaleModel, FrictionOnlyBrakingMatchesClosedForm) {
  FullSizeVehicle car;
  car.drag_coefficient = 0.0;  // disable drag: closed form v^2 / (2 mu eff g)
  const double v = 20.0;
  const double expected = v * v / (2.0 * car.friction_mu * car.brake_efficiency * 9.81);
  EXPECT_NEAR(full_size_braking_distance_m(car, v), expected, 0.05);
}

TEST(ScaleModel, DragShortensTheStop) {
  FullSizeVehicle with_drag;
  FullSizeVehicle no_drag = with_drag;
  no_drag.drag_coefficient = 0.0;
  EXPECT_LT(full_size_braking_distance_m(with_drag, 30.0),
            full_size_braking_distance_m(no_drag, 30.0));
}

TEST(ScaleModel, ReactionTimeAddsLinearTravel) {
  FullSizeVehicle car;
  const double base = full_size_braking_distance_m(car, 15.0);
  EXPECT_NEAR(full_size_braking_distance_m(car, 15.0, 1.0), base + 15.0, 1e-6);
}

TEST(ScaleModel, ZeroSpeedStopsInPlace) {
  EXPECT_DOUBLE_EQ(full_size_braking_distance_m(FullSizeVehicle{}, 0.0), 0.0);
  EXPECT_THROW((void)full_size_braking_distance_m(FullSizeVehicle{}, -1.0), std::invalid_argument);
}

TEST(ScaleModel, FroudeScaling) {
  EXPECT_NEAR(froude_equivalent_speed_mps(1.2, 10.0), 1.2 * std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(froude_equivalent_distance_m(0.36, 10.0), 3.6, 1e-12);
  EXPECT_THROW((void)froude_equivalent_speed_mps(1.0, 0.0), std::invalid_argument);
}

TEST(ScaleModel, ImpliedDeceleration) {
  EXPECT_NEAR(implied_deceleration_mps2(1.2, 0.36), 2.0, 1e-9);
  EXPECT_THROW((void)implied_deceleration_mps2(1.0, 0.0), std::invalid_argument);
}

TEST(ScaleModel, TruckNeedsMoreRoomThanCar) {
  const double v = 25.0;
  EXPECT_GT(full_size_braking_distance_m(FullSizeVehicle::heavy_truck(), v),
            full_size_braking_distance_m(FullSizeVehicle::passenger_car(), v));
}

TEST(Cellular, DeliversWithConfiguredLatency) {
  sim::Scheduler sched;
  cellular::CellularNetwork net{sched, sim::RandomStream{1, "cell"}};
  net.create_endpoint("a");
  auto& b = net.create_endpoint("b");
  int received = 0;
  sim::SimTime arrival;
  b.set_receive_callback([&](const std::vector<std::uint8_t>& payload, const std::string& from) {
    EXPECT_EQ(from, "a");
    EXPECT_EQ(payload.size(), 3u);
    ++received;
    arrival = sched.now();
  });
  net.send("a", "b", {1, 2, 3});
  sched.run();
  EXPECT_EQ(received, 1);
  // eMBB profile: ~20 ms nominal (uplink 9 + core 4 + downlink 7).
  EXPECT_GT(arrival, 5_ms);
  EXPECT_LT(arrival, 60_ms);
}

TEST(Cellular, UrllcIsMuchFaster) {
  sim::Scheduler sched;
  cellular::CellularNetwork net{sched, sim::RandomStream{2, "cell"},
                                cellular::CellularConfig::urllc()};
  net.create_endpoint("a");
  auto& b = net.create_endpoint("b");
  sim::RunningStats latency;
  std::vector<sim::SimTime> sent;
  b.set_receive_callback([&](const std::vector<std::uint8_t>& payload, const std::string&) {
    latency.add((sched.now() - sent[payload[0]]).to_milliseconds());
  });
  for (std::uint8_t i = 0; i < 100; ++i) {
    sched.schedule_at(10_ms * i, [&, i] {
      sent.push_back(sched.now());
      net.send("a", "b", {i});
    });
  }
  sched.run();
  EXPECT_GT(latency.count(), 95u);
  EXPECT_LT(latency.mean(), 6.0);
}

TEST(Cellular, DuplicateEndpointRejected) {
  sim::Scheduler sched;
  cellular::CellularNetwork net{sched, sim::RandomStream{3, "cell"}};
  net.create_endpoint("a");
  EXPECT_THROW(net.create_endpoint("a"), std::invalid_argument);
  EXPECT_EQ(net.endpoint("missing"), nullptr);
  EXPECT_NE(net.endpoint("a"), nullptr);
}

TEST(Cellular, LossDropsSilently) {
  sim::Scheduler sched;
  cellular::CellularConfig config;
  config.loss_probability = 1.0;
  cellular::CellularNetwork net{sched, sim::RandomStream{4, "cell"}, config};
  net.create_endpoint("a");
  auto& b = net.create_endpoint("b");
  int received = 0;
  b.set_receive_callback([&](const auto&, const auto&) { ++received; });
  net.send("a", "b", {1});
  sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().lost, 1u);
}

TEST(Platoon, EveryVehicleStopsOnDirectBroadcast) {
  PlatoonConfig config;
  config.seed = 5;
  config.n_vehicles = 4;
  PlatoonScenario scenario{config};
  const auto result = scenario.run_emergency_stop();
  ASSERT_EQ(result.vehicles.size(), 4u);
  EXPECT_TRUE(result.all_stopped);
  for (const auto& v : result.vehicles) {
    EXPECT_TRUE(v.stopped);
    EXPECT_GT(v.detection_to_action_ms, 0.0);
    EXPECT_LT(v.detection_to_action_ms, 150.0);
  }
  EXPECT_LT(result.worst_detection_to_action_ms, 150.0);
}

TEST(Platoon, CellularLeaderArrangementStopsEveryone) {
  PlatoonConfig config;
  config.seed = 6;
  config.n_vehicles = 3;
  config.leader_uses_cellular = true;
  PlatoonScenario scenario{config};
  const auto result = scenario.run_emergency_stop();
  EXPECT_TRUE(result.all_stopped);
  // The leader stops via the cellular path; followers need the leader's
  // re-broadcast, so the worst delay exceeds the leader's.
  EXPECT_GE(result.worst_detection_to_action_ms, result.vehicles[0].detection_to_action_ms);
}

TEST(Platoon, MultiHopForwardingStopsTheTail) {
  PlatoonConfig config;
  config.seed = 7;
  config.n_vehicles = 5;
  config.spacing_m = 12.0;
  config.radio.tx_power_dbm = -18.0;
  config.radio.cs_threshold_dbm = -80.0;
  PlatoonScenario scenario{config};
  const auto result = scenario.run_emergency_stop();
  EXPECT_TRUE(result.all_stopped);
  // Delay grows towards the tail (forwarding chain).
  EXPECT_GT(result.vehicles.back().detection_to_action_ms,
            result.vehicles.front().detection_to_action_ms);
}

}  // namespace
}  // namespace rst::core
