// Differential harness for the Collective Perception service.
//
// Two contracts, proven side by side:
//  * CPM OFF is free: with the feature disabled (default, or explicitly via
//    config/spec keys) every default-path artifact — the pinned Table II /
//    Table III renderings and the city experiment fingerprints — stays byte
//    identical to the seed repo. Building the CPM machinery must not move a
//    single stochastic draw.
//  * CPM ON is deterministic: the fused-hazard scenarios and a CPM-enabled
//    campaign are bit-reproducible across reruns, medium partition counts
//    and trial-pool thread counts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "rst/core/config_io.hpp"
#include "rst/core/experiment.hpp"
#include "rst/scenario/city.hpp"
#include "rst/scenario/cpm_scenarios.hpp"

namespace rst {
namespace {

using scenario::CitySpec;
using sim::SimTime;

// Pinned seed renderings, duplicated from golden_output_test.cpp on
// purpose: if a CPM change regenerates one copy without the other, the
// disagreement itself is the review flag.
const std::string kGoldenTable2 =
    "Table II: Time interval measurements (ms)\n"
    "  Interval                         run#1  run#2  run#3  run#4  run#5    Avg\n"
    "  #2->#3 Detection -> RSU DENM     31.8   23.2   22.0   28.8   19.7   25.1\n"
    "  #3->#4 RSU DENM -> OBU recv       1.1    0.8    0.9    0.8    1.0    0.9\n"
    "  #4->#5 OBU recv -> actuators     25.3   50.4   34.5   29.7   50.2   38.0\n"
    "  Total delay (#2->#5)             58.2   74.4   57.4   59.3   70.9   64.1\n"
    "  paper: 27.6 / 1.6 / 29.2 / 58.4 ms avg over 5 runs; all totals < 100 ms\n";

const std::string kGoldenTable3 =
    "Table III: Distance travelled from detection to halt (m)\n"
    "  run#1: 0.33  run#2: 0.35  run#3: 0.38  run#4: 0.37  run#5: 0.36  \n"
    "  avg 0.359 m, variance 0.0004 (paper: avg 0.36 m, var 0.0022)\n";

CitySpec small_city() {
  CitySpec spec;
  spec.seed = 11;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.block_m = 120.0;
  spec.vehicles = 0;
  spec.rsu_corridor_only = true;
  spec.rsu_every = 2;
  spec.vehicle_speed_mps = 12.0;
  return spec;
}

constexpr auto kDriveTime = SimTime::seconds(20);

// --- CPM off: byte identity with the seed -----------------------------------

TEST(CpmDifferential, ExplicitCpmOffMatchesTheGoldenTables) {
  core::TestbedConfig config;
  config.seed = 42;
  // The cpm_* knobs must be inert while cpm_enable is off: no construction,
  // no draws, no schedule changes.
  core::apply_config_overrides(config,
                               "cpm_enable = false\n"
                               "cpm_interval_ms = 100\n"
                               "cpm_object_lifetime_ms = 900\n"
                               "cpm_redundancy_window_ms = 250\n");
  const auto summary = core::run_emergency_brake_experiment(config, 5, 1);
  EXPECT_EQ(core::format_table2(summary), kGoldenTable2);
  EXPECT_EQ(core::format_table3(summary), kGoldenTable3);
}

TEST(CpmDifferential, SpecRoundTripWithCpmKeysPreservesCityFingerprints) {
  const CitySpec base = small_city();
  const CitySpec parsed = scenario::parse_city_spec(scenario::format_city_spec(base));
  EXPECT_FALSE(parsed.cpm_enable);

  const auto fp_base = scenario::run_handover_experiment(base, kDriveTime).fingerprint();
  const auto fp_parsed = scenario::run_handover_experiment(parsed, kDriveTime).fingerprint();
  EXPECT_EQ(fp_base, fp_parsed);
}

TEST(CpmDifferential, CpmConstructionDrawsNothingFromTheCityStack) {
  // Coverage is measured without running services: the fingerprint can only
  // differ if merely *constructing* the CPM services moved an RNG stream.
  CitySpec with_cpm = small_city();
  with_cpm.cpm_enable = true;
  scenario::CityScenario off{small_city()};
  scenario::CityScenario on{with_cpm};
  EXPECT_EQ(scenario::measure_coverage(off, 0, 10.0).fingerprint(),
            scenario::measure_coverage(on, 0, 10.0).fingerprint());
}

// --- CPM on: bit reproducibility --------------------------------------------

TEST(CpmDifferential, OccludedPedestrianIsBitReproducible) {
  const auto on_a = scenario::run_occluded_pedestrian(42, true);
  const auto on_b = scenario::run_occluded_pedestrian(42, true);
  EXPECT_EQ(on_a.fingerprint(), on_b.fingerprint());

  const auto off_a = scenario::run_occluded_pedestrian(42, false);
  const auto off_b = scenario::run_occluded_pedestrian(42, false);
  EXPECT_EQ(off_a.fingerprint(), off_b.fingerprint());
  EXPECT_NE(on_a.fingerprint(), off_a.fingerprint());
}

TEST(CpmDifferential, OccludedPedestrianIsPartitionCountInvariant) {
  const auto serial = scenario::run_occluded_pedestrian(42, true, 1);
  const auto parallel = scenario::run_occluded_pedestrian(42, true, 8);
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_TRUE(serial.braked);
}

TEST(CpmDifferential, OccludedPedestrianIsPartitionEnvInvariant) {
  const char* saved = std::getenv("RST_PARTITIONS");
  const std::string saved_value = saved ? saved : "";
  ::setenv("RST_PARTITIONS", "1", 1);
  const auto serial = scenario::run_occluded_pedestrian(42, true, 0);
  ::setenv("RST_PARTITIONS", "8", 1);
  const auto parallel = scenario::run_occluded_pedestrian(42, true, 0);
  if (saved) ::setenv("RST_PARTITIONS", saved_value.c_str(), 1);
  else ::unsetenv("RST_PARTITIONS");
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
}

TEST(CpmDifferential, BlindIntersectionIsBitReproducible) {
  const auto on_a = scenario::run_blind_intersection(7, true);
  const auto on_b = scenario::run_blind_intersection(7, true);
  EXPECT_EQ(on_a.fingerprint(), on_b.fingerprint());

  const auto off_a = scenario::run_blind_intersection(7, false);
  const auto off_b = scenario::run_blind_intersection(7, false);
  EXPECT_EQ(off_a.fingerprint(), off_b.fingerprint());
  EXPECT_NE(on_a.fingerprint(), off_a.fingerprint());
}

TEST(CpmDifferential, CpmOnCampaignIsThreadCountInvariant) {
  core::TestbedConfig config;
  config.seed = 42;
  core::apply_config_overrides(config, "cpm_enable = true\ncpm_interval_ms = 100\n");
  const auto serial = core::run_emergency_brake_experiment(config, 5, 1);
  const auto pooled = core::run_emergency_brake_experiment(config, 5, 8);
  EXPECT_EQ(core::format_table2(serial), core::format_table2(pooled));
  EXPECT_EQ(core::format_table3(serial), core::format_table3(pooled));
  // The CPM traffic shares the medium with the DENM chain, so the CPM-on
  // rendering must differ from the pinned CPM-off tables — if it didn't,
  // the feature flag would not actually be reaching the stack.
  EXPECT_NE(core::format_table2(serial), kGoldenTable2);
}

}  // namespace
}  // namespace rst
