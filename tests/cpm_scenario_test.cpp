#include <gtest/gtest.h>

#include "rst/scenario/cpm_scenarios.hpp"

namespace rst::scenario {
namespace {

using namespace rst::sim::literals;

// --- Occluded pedestrian -----------------------------------------------------

TEST(OccludedPedestrian, CpmBrakesBeforeLineOfSightOpens) {
  const auto on = run_occluded_pedestrian(42, /*cpm_enable=*/true);
  ASSERT_TRUE(on.cpm_enabled);
  ASSERT_TRUE(on.fused);
  ASSERT_TRUE(on.braked);
  ASSERT_TRUE(on.los_seen);
  // The chain the scenario proves: percepts fused over the air first, the
  // brake decision follows, and direct line of sight opens only seconds
  // later — the vehicle stopped for an object it never saw.
  EXPECT_LT(on.t_first_fusion, on.t_brake);
  EXPECT_LT(on.t_brake, on.t_los);
  EXPECT_GE(on.t_los - on.t_brake, 1_s);
  EXPECT_GT(on.cpms_sent, 0u);
  EXPECT_GT(on.objects_fused, 0u);
}

TEST(OccludedPedestrian, WithoutCpmTheVehicleNeverBrakes) {
  const auto off = run_occluded_pedestrian(42, /*cpm_enable=*/false);
  EXPECT_FALSE(off.braked);
  EXPECT_FALSE(off.fused);
  EXPECT_EQ(off.cpms_sent, 0u);
  EXPECT_EQ(off.objects_fused, 0u);
  // The un-warned vehicle threads the crossing at sub-vehicle separation.
  EXPECT_LT(off.min_separation_m, 1.5);
}

TEST(OccludedPedestrian, CpmWidensTheMinimumSeparation) {
  const auto on = run_occluded_pedestrian(42, true);
  const auto off = run_occluded_pedestrian(42, false);
  EXPECT_GT(on.min_separation_m, off.min_separation_m + 1.5);
}

// --- Blind intersection ------------------------------------------------------

TEST(BlindIntersection, FusedPerceptRaisesTheThreat) {
  const auto on = run_blind_intersection(7, /*cpm_enable=*/true);
  ASSERT_TRUE(on.threat_flagged);
  EXPECT_TRUE(on.b_braked);
  // Provenance: the percept that raised the threat was sensed by the
  // parked observer, not by the vehicle itself.
  EXPECT_EQ(on.threat_source, 101u);
  // Flagged on the first few CPMs, long before the conflict (~3.8 s in).
  EXPECT_LT(on.t_threat, 1_s);
  EXPECT_GT(on.min_gap_m, 10.0);
  EXPECT_GT(on.cpms_sent, 0u);
  EXPECT_GT(on.objects_fused, 0u);
}

TEST(BlindIntersection, WithoutCpmTheConflictPlaysOut) {
  const auto off = run_blind_intersection(7, /*cpm_enable=*/false);
  EXPECT_FALSE(off.threat_flagged);
  EXPECT_FALSE(off.b_braked);
  EXPECT_LT(off.min_gap_m, 1.5);
  EXPECT_EQ(off.cpms_sent, 0u);
}

}  // namespace
}  // namespace rst::scenario
