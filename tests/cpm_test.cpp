#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "rst/its/facilities/cpm_service.hpp"
#include "rst/its/messages/cpm.hpp"

namespace rst::its {
namespace {

using namespace rst::sim::literals;

// --- Codec ------------------------------------------------------------------

Cpm sample_cpm() {
  Cpm cpm;
  cpm.header.station_id = 77;
  cpm.generation_delta_time = 4242;
  cpm.management.station_type = StationType::RoadSideUnit;
  cpm.management.reference_position.latitude = 411780000;
  cpm.management.reference_position.longitude = -86080000;
  cpm.management.reference_position.confidence.semi_major_cm = 50;
  cpm.management.reference_position.confidence.semi_minor_cm = 50;
  cpm.objects.push_back({.object_id = 9,
                         .age_ms = 120,
                         .x_offset_cm = -250,
                         .y_offset_cm = 430,
                         .x_speed_cms = -25,
                         .y_speed_cms = 0,
                         .object_class = cpm_class_from_label("person"),
                         .confidence_pct = 92});
  return cpm;
}

TEST(CpmCodec, RoundTripsSample) {
  const Cpm cpm = sample_cpm();
  const auto bytes = cpm.encode();
  const Cpm back = Cpm::decode(bytes);
  EXPECT_EQ(back, cpm);
  EXPECT_EQ(back.encode(), bytes);
}

TEST(CpmCodec, RoundTripsBoundaryValues) {
  Cpm cpm = sample_cpm();
  cpm.objects.clear();
  // All-minimum, all-maximum and a one-off-the-rails entry.
  cpm.objects.push_back({0, 0, -132768, -132768, -16383, -16383, 0, 0});
  cpm.objects.push_back({65535, 1500, 132767, 132767, 16383, 16383, 255, 100});
  cpm.objects.push_back({1, 1, 1, -1, 1, -1, 1, 1});
  const auto bytes = cpm.encode();
  const Cpm back = Cpm::decode(bytes);
  EXPECT_EQ(back, cpm);
  EXPECT_EQ(back.encode(), bytes);
}

TEST(CpmCodec, RoundTripsEmptyAndFull) {
  Cpm cpm = sample_cpm();
  cpm.objects.clear();
  EXPECT_EQ(Cpm::decode(cpm.encode()), cpm);
  for (std::size_t i = 0; i < kCpmMaxPerceivedObjects; ++i) {
    cpm.objects.push_back({static_cast<std::uint16_t>(i), 10, 100, -100, 5, -5,
                           static_cast<std::uint8_t>(i % 8), 80});
  }
  const auto bytes = cpm.encode();
  EXPECT_EQ(Cpm::decode(bytes).encode(), bytes);
}

TEST(CpmCodec, RandomRoundTripIsAFixedPoint) {
  std::mt19937_64 rng{20260808};
  for (int trial = 0; trial < 200; ++trial) {
    Cpm cpm;
    cpm.header.station_id = static_cast<StationId>(rng());
    cpm.generation_delta_time = static_cast<std::uint16_t>(rng());
    cpm.management.station_type = static_cast<StationType>(rng() % 16);
    cpm.management.reference_position.latitude =
        static_cast<std::int32_t>(rng() % 1800000001) - 900000000;
    cpm.management.reference_position.longitude =
        static_cast<std::int32_t>(static_cast<std::int64_t>(rng() % 3600000001ULL) - 1800000000);
    const std::size_t n = rng() % 12;
    for (std::size_t i = 0; i < n; ++i) {
      CpmPerceivedObject o;
      o.object_id = static_cast<std::uint16_t>(rng());
      o.age_ms = static_cast<std::uint16_t>(rng() % 1501);
      o.x_offset_cm = static_cast<std::int32_t>(rng() % 265536) - 132768;
      o.y_offset_cm = static_cast<std::int32_t>(rng() % 265536) - 132768;
      o.x_speed_cms = static_cast<std::int16_t>(rng() % 32767) - 16383;
      o.y_speed_cms = static_cast<std::int16_t>(rng() % 32767) - 16383;
      o.object_class = static_cast<std::uint8_t>(rng());
      o.confidence_pct = static_cast<std::uint8_t>(rng() % 101);
      cpm.objects.push_back(o);
    }
    const auto bytes = cpm.encode();
    const Cpm back = Cpm::decode(bytes);
    ASSERT_EQ(back, cpm);
    ASSERT_EQ(back.encode(), bytes);
  }
}

TEST(CpmCodec, RejectsForeignMessageId) {
  Cpm cpm = sample_cpm();
  auto bytes = cpm.encode();
  // The message id rides in the second header byte (version, id, ...).
  bytes[1] = static_cast<std::uint8_t>(MessageId::Denm);
  EXPECT_THROW(Cpm::decode(bytes), asn1::DecodeError);
}

TEST(CpmCodec, ClassLabelMappingRoundTrips) {
  for (std::uint8_t code = 0; code < 8; ++code) {
    EXPECT_EQ(cpm_class_from_label(cpm_label_from_class(code)), code);
  }
  EXPECT_EQ(cpm_class_from_label("bird"), 0);       // unmapped -> Unknown
  EXPECT_EQ(cpm_label_from_class(200), "unknown");  // out of table -> unknown
  EXPECT_EQ(cpm_label_from_class(cpm_class_from_label("stop sign")), "stop sign");
}

// --- Service ----------------------------------------------------------------

/// Two stations with GN/BTP plumbing, an LDM and a CPM service each.
struct Rig {
  sim::Scheduler sched;
  sim::RandomStream rng{55, "cpm_test"};
  geo::LocalFrame frame{{41.1780, -8.6080}};
  std::unique_ptr<dot11p::Medium> medium;

  struct Station {
    std::unique_ptr<dot11p::Radio> radio;
    std::unique_ptr<GeoNetRouter> router;
    std::unique_ptr<Ldm> ldm;
    std::unique_ptr<CpmService> cpm;
    geo::Vec2 position{};
  };
  std::vector<std::unique_ptr<Station>> stations;

  Rig() {
    dot11p::ChannelModel channel;
    channel.path_loss =
        std::make_shared<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.0));
    medium = std::make_unique<dot11p::Medium>(sched, rng.child("medium"), channel);
  }

  Station& add_station(StationId id, geo::Vec2 pos, CpmConfig config = {}) {
    auto st = std::make_unique<Station>();
    st->position = pos;
    Station* raw = st.get();
    st->radio = std::make_unique<dot11p::Radio>(
        *medium, dot11p::RadioConfig{}, [raw] { return raw->position; },
        rng.child("r" + std::to_string(id)), "r" + std::to_string(id));
    st->router = std::make_unique<GeoNetRouter>(
        sched, *st->radio, frame, GnAddress::from_station(id),
        [raw] { return EgoState{raw->position, 0.0, 0.0}; }, GeoNetConfig{},
        rng.child("g" + std::to_string(id)));
    st->ldm = std::make_unique<Ldm>(sched, frame);
    st->cpm = std::make_unique<CpmService>(sched, *st->router, id, config, st->ldm.get());
    st->router->set_delivery_handler(
        [raw](const std::vector<std::uint8_t>& pdu, const GnDeliveryMeta& meta) {
          const auto parsed = BtpHeader::parse(pdu);
          if (parsed.header.destination_port == kBtpPortCpm) {
            raw->cpm->on_btp_payload(parsed.payload, meta);
          }
        });
    stations.push_back(std::move(st));
    return *stations.back();
  }
};

PerceivedObject percept(std::uint32_t id, geo::Vec2 pos, geo::Vec2 vel = {},
                        double confidence = 0.9, const char* label = "person") {
  PerceivedObject obj;
  obj.object_id = id;
  obj.classification = label;
  obj.position = pos;
  obj.velocity = vel;
  obj.confidence = confidence;
  return obj;
}

TEST(CpmService, QuietWithNothingPerceived) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0}, {.interval = 100_ms});
  rig.add_station(2, {30, 0});
  a.cpm->start();
  rig.sched.run_until(1_s);
  EXPECT_EQ(a.cpm->stats().cpms_sent, 0u);
  EXPECT_EQ(a.cpm->send_now(), 0u);
}

TEST(CpmService, PublishesAtTheConfiguredCadence) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0}, {.interval = 100_ms});
  auto& b = rig.add_station(2, {30, 0});
  a.ldm->set_perceived_object_lifetime(10_s);
  a.ldm->update_perceived_object(percept(9, {5, 5}, {1, 0}));
  a.cpm->start();
  rig.sched.run_until(1050_ms);
  EXPECT_EQ(a.cpm->stats().cpms_sent, 10u);
  EXPECT_EQ(a.cpm->stats().objects_published, 10u);
  EXPECT_EQ(b.cpm->stats().cpms_received, 10u);
}

TEST(CpmService, FusedPerceptCarriesProvenanceAndSyntheticId) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  a.ldm->update_perceived_object(percept(9, {5, 5}, {1, 0}));
  EXPECT_EQ(a.cpm->send_now(), 1u);
  rig.sched.run_until(50_ms);

  ASSERT_EQ(b.cpm->stats().objects_fused, 1u);
  const auto objects = b.ldm->perceived_objects();
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].object_id, CpmService::remote_object_id(1, 9));
  EXPECT_EQ(objects[0].source_station, 1u);
  EXPECT_EQ(objects[0].classification, "person");
  EXPECT_NEAR(objects[0].position.x, 5.0, 0.02);
  EXPECT_NEAR(objects[0].position.y, 5.0, 0.02);
  EXPECT_NEAR(objects[0].velocity.x, 1.0, 0.02);
  EXPECT_NEAR(objects[0].confidence, 0.9, 0.011);
}

TEST(CpmService, RefreshUpdatesInsteadOfDuplicating) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  a.ldm->update_perceived_object(percept(9, {5, 5}, {1, 0}));
  a.cpm->send_now();
  rig.sched.run_until(200_ms);
  a.ldm->update_perceived_object(percept(9, {5.2, 5}, {1, 0}));
  a.cpm->send_now();
  rig.sched.run_until(400_ms);

  EXPECT_EQ(b.cpm->stats().objects_fused, 2u);
  const auto objects = b.ldm->perceived_objects();
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_NEAR(objects[0].position.x, 5.2, 0.02);
}

TEST(CpmService, MeasurementAgeSurvivesTheWire) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  rig.sched.run_until(100_ms);
  a.ldm->update_perceived_object(percept(9, {5, 5}));  // measured stamped at 100 ms
  rig.sched.run_until(400_ms);
  a.cpm->send_now();
  rig.sched.run_until(450_ms);

  const auto obj = b.ldm->perceived_object(CpmService::remote_object_id(1, 9));
  ASSERT_TRUE(obj.has_value());
  // Reconstructed measurement time = rx time - wire age; the only slack is
  // the sub-millisecond air/stack latency folded into the 1 ms age grid.
  EXPECT_GE(obj->measured, 95_ms);
  EXPECT_LE(obj->measured, 110_ms);
}

TEST(CpmService, LocalTrackWinsDedup) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  a.ldm->update_perceived_object(percept(9, {5, 5}, {1, 0}));
  b.ldm->update_perceived_object(percept(4, {5.3, 5}, {1, 0}));  // same physical object
  a.cpm->send_now();
  rig.sched.run_until(50_ms);

  EXPECT_EQ(b.cpm->stats().objects_deduped, 1u);
  EXPECT_EQ(b.cpm->stats().objects_fused, 0u);
  const auto objects = b.ldm->perceived_objects();
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].object_id, 4u);
  EXPECT_EQ(objects[0].source_station, 0u);
}

TEST(CpmService, OpposedHeadingsDefeatTheDedupGate) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  a.ldm->update_perceived_object(percept(9, {5, 5}, {1, 0}));
  b.ldm->update_perceived_object(percept(4, {5.3, 5}, {-1, 0}));  // counterflow neighbour
  a.cpm->send_now();
  rig.sched.run_until(50_ms);

  EXPECT_EQ(b.cpm->stats().objects_fused, 1u);
  EXPECT_EQ(b.ldm->perceived_objects().size(), 2u);
}

TEST(CpmService, ConfidenceGateDropsWeakRemotePercepts) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0}, {.fusion_min_confidence = 0.8});
  a.ldm->update_perceived_object(percept(9, {5, 5}, {1, 0}, 0.5));
  a.cpm->send_now();
  rig.sched.run_until(50_ms);

  EXPECT_EQ(b.cpm->stats().objects_gated, 1u);
  EXPECT_EQ(b.cpm->stats().objects_fused, 0u);
  EXPECT_TRUE(b.ldm->perceived_objects().empty());
}

TEST(CpmService, FusedPerceptsExpireWithTheLdmLifetime) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  b.ldm->set_perceived_object_lifetime(200_ms);
  a.ldm->update_perceived_object(percept(9, {5, 5}));
  a.cpm->send_now();
  rig.sched.run_until(50_ms);
  ASSERT_EQ(b.ldm->perceived_objects().size(), 1u);

  rig.sched.run_until(300_ms);
  EXPECT_TRUE(b.ldm->perceived_objects().empty());
  b.ldm->garbage_collect();
  EXPECT_GE(b.ldm->perceived_objects_expired(), 1u);
}

TEST(CpmService, RemotePerceptsAreNeverReannounced) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  a.ldm->update_perceived_object(percept(9, {5, 5}));
  a.cpm->send_now();
  rig.sched.run_until(50_ms);
  ASSERT_EQ(b.ldm->perceived_objects().size(), 1u);
  // B's only percept is the fused remote one: its own CPM must stay empty.
  EXPECT_TRUE(b.cpm->build_cpm().objects.empty());
  EXPECT_EQ(b.cpm->send_now(), 0u);
}

TEST(CpmService, RedundancyWindowSilencesEchoes) {
  Rig rig;
  CpmConfig config;
  config.redundancy_window = 500_ms;
  auto& a = rig.add_station(1, {0, 0}, config);
  auto& b = rig.add_station(2, {30, 0}, config);
  a.ldm->set_perceived_object_lifetime(10_s);
  b.ldm->set_perceived_object_lifetime(10_s);
  // Both stations independently see the same physical object.
  a.ldm->update_perceived_object(percept(9, {5, 5}, {1, 0}));
  b.ldm->update_perceived_object(percept(4, {5.3, 5}, {1, 0}));
  a.cpm->send_now();
  rig.sched.run_until(50_ms);

  // Within the window B treats the object as already announced.
  EXPECT_EQ(b.cpm->build_cpm().objects.size(), 0u);
  EXPECT_EQ(b.cpm->send_now(), 0u);
  EXPECT_EQ(b.cpm->stats().objects_redundancy_skipped, 1u);

  // Once the window lapses the object is B's to announce again.
  rig.sched.run_until(600_ms);
  EXPECT_EQ(b.cpm->build_cpm().objects.size(), 1u);
  EXPECT_EQ(b.cpm->send_now(), 1u);
}

TEST(CpmService, ObjectCountCapsAtConfiguredMaximum) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0}, {.max_objects = 3});
  rig.add_station(2, {30, 0});
  for (std::uint32_t i = 0; i < 10; ++i) {
    a.ldm->update_perceived_object(percept(i, {5.0 + 2.0 * i, 5}));
  }
  EXPECT_EQ(a.cpm->send_now(), 3u);
}

TEST(CpmService, StopCancelsTheCadence) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0}, {.interval = 100_ms});
  rig.add_station(2, {30, 0});
  a.ldm->set_perceived_object_lifetime(10_s);
  a.ldm->update_perceived_object(percept(9, {5, 5}));
  a.cpm->start();
  rig.sched.run_until(350_ms);
  const auto sent = a.cpm->stats().cpms_sent;
  EXPECT_GE(sent, 3u);
  a.cpm->stop();
  rig.sched.run_until(1_s);
  EXPECT_EQ(a.cpm->stats().cpms_sent, sent);
}

}  // namespace
}  // namespace rst::its
