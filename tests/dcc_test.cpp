#include <gtest/gtest.h>

#include <memory>

#include "rst/its/dcc/channel_probe.hpp"
#include "rst/its/dcc/adaptive_dcc.hpp"
#include "rst/its/dcc/reactive_dcc.hpp"

namespace rst::its::dcc {
namespace {

using namespace rst::sim::literals;

struct Rig {
  sim::Scheduler sched;
  sim::RandomStream rng{3131, "dcc_test"};
  std::unique_ptr<dot11p::Medium> medium;
  std::vector<std::unique_ptr<dot11p::Radio>> radios;

  Rig() {
    dot11p::ChannelModel channel;
    channel.path_loss =
        std::make_shared<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.0));
    medium = std::make_unique<dot11p::Medium>(sched, rng.child("medium"), channel);
  }

  dot11p::Radio& add_radio(geo::Vec2 pos) {
    const auto i = radios.size();
    radios.push_back(std::make_unique<dot11p::Radio>(
        *medium, dot11p::RadioConfig{}, [pos] { return pos; },
        rng.child("r" + std::to_string(i)), "r" + std::to_string(i)));
    return *radios.back();
  }
};

dot11p::Frame frame_of(std::size_t n, dot11p::AccessCategory ac = dot11p::AccessCategory::Video) {
  dot11p::Frame f;
  f.payload.assign(n, 0x55);
  f.ac = ac;
  return f;
}

TEST(BusyTime, AccumulatesDuringOwnTransmissions) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  auto& rx = rig.add_radio({20, 0});
  EXPECT_EQ(tx.cumulative_busy_time(), sim::SimTime::zero());
  tx.send(frame_of(400));
  rig.sched.run();
  const auto airtime = dot11p::frame_airtime(400 + dot11p::kMacOverheadBytes, dot11p::Mcs::Qpsk12);
  EXPECT_EQ(tx.cumulative_busy_time(), airtime);
  // The receiver sensed the channel busy for the same duration.
  EXPECT_EQ(rx.cumulative_busy_time(), airtime);
}

TEST(ChannelProbe, MeasuresKnownDutyCycle) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  auto& rx = rig.add_radio({20, 0});
  ChannelProbe probe{rig.sched, rx};
  probe.start();
  // One 400-byte frame (~0.59 ms airtime) every 5 ms -> ~12% duty cycle.
  for (int i = 0; i < 400; ++i) {
    rig.sched.schedule_at(5_ms * i, [&] { tx.send(frame_of(400)); });
  }
  rig.sched.run_until(2_s);
  const auto airtime = dot11p::frame_airtime(400 + dot11p::kMacOverheadBytes, dot11p::Mcs::Qpsk12);
  const double expected = airtime.to_seconds() / 5e-3;
  EXPECT_NEAR(probe.cbr(), expected, 0.03);
  EXPECT_GE(probe.windows_measured(), 18u);
}

TEST(ChannelProbe, IdleChannelIsZero) {
  Rig rig;
  auto& rx = rig.add_radio({0, 0});
  ChannelProbe probe{rig.sched, rx};
  probe.start();
  rig.sched.run_until(1_s);
  EXPECT_DOUBLE_EQ(probe.cbr(), 0.0);
}

TEST(DccTable, DefaultTableIsMonotone) {
  const auto& table = default_dcc_table();
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GT(table[i].cbr_up_threshold, table[i - 1].cbr_up_threshold);
    EXPECT_GT(table[i].min_gap, table[i - 1].min_gap);
  }
  EXPECT_EQ(std::string{to_string(DccState::Relaxed)}, "Relaxed");
  EXPECT_EQ(std::string{to_string(DccState::Restrictive)}, "Restrictive");
}

TEST(ReactiveDcc, StateGoesUpImmediatelyAndDownWithHysteresis) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  ChannelProbe probe{rig.sched, radio};
  ReactiveDccConfig config;
  config.down_hysteresis_windows = 3;
  ReactiveDcc dcc{rig.sched, radio, probe, config};

  EXPECT_EQ(dcc.state(), DccState::Relaxed);
  // Sudden congestion: jumps straight to the matching state.
  dcc.on_channel_load(0.55);
  EXPECT_EQ(dcc.state(), DccState::Active3);
  dcc.on_channel_load(0.70);
  EXPECT_EQ(dcc.state(), DccState::Restrictive);

  // Load clears: needs `down_hysteresis_windows` quiet windows per step.
  dcc.on_channel_load(0.05);
  dcc.on_channel_load(0.05);
  EXPECT_EQ(dcc.state(), DccState::Restrictive);
  dcc.on_channel_load(0.05);
  EXPECT_EQ(dcc.state(), DccState::Active3);
  // A congested window resets the hysteresis counter.
  dcc.on_channel_load(0.05);
  dcc.on_channel_load(0.55);
  dcc.on_channel_load(0.05);
  dcc.on_channel_load(0.05);
  EXPECT_EQ(dcc.state(), DccState::Active3);
  dcc.on_channel_load(0.05);
  EXPECT_EQ(dcc.state(), DccState::Active2);
}

TEST(ReactiveDcc, MinGapFollowsState) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  ChannelProbe probe{rig.sched, radio};
  ReactiveDcc dcc{rig.sched, radio, probe, {}};
  EXPECT_EQ(dcc.current_min_gap(), 60_ms);
  dcc.on_channel_load(0.45);
  EXPECT_EQ(dcc.current_min_gap(), 180_ms);
  dcc.on_channel_load(0.95);
  EXPECT_EQ(dcc.current_min_gap(), 460_ms);
}

TEST(ReactiveDcc, GateSpacingInRelaxedState) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  auto& rx = rig.add_radio({20, 0});
  std::vector<sim::SimTime> rx_times;
  rx.set_receive_callback([&](const dot11p::Frame&, const dot11p::RxInfo& info) {
    rx_times.push_back(info.rx_time);
  });
  ChannelProbe probe{rig.sched, radio};
  ReactiveDcc dcc{rig.sched, radio, probe, {}};
  // Burst of 5 frames: Relaxed state enforces >= 60 ms between them.
  for (int i = 0; i < 5; ++i) dcc.send(frame_of(100));
  rig.sched.run_until(2_s);
  ASSERT_EQ(rx_times.size(), 5u);
  for (std::size_t i = 1; i < rx_times.size(); ++i) {
    EXPECT_GE(rx_times[i] - rx_times[i - 1], 59_ms);
  }
  EXPECT_EQ(dcc.stats().passed, 5u);
  EXPECT_EQ(dcc.stats().queued, 4u);
}

TEST(ReactiveDcc, HighPriorityProfileDequeuesFirst) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  auto& rx = rig.add_radio({20, 0});
  std::vector<dot11p::AccessCategory> order;
  rx.set_receive_callback([&](const dot11p::Frame& f, const dot11p::RxInfo&) {
    order.push_back(f.ac);
  });
  ChannelProbe probe{rig.sched, radio};
  ReactiveDcc dcc{rig.sched, radio, probe, {}};
  dcc.send(frame_of(100, dot11p::AccessCategory::Video));       // passes (gate open)
  dcc.send(frame_of(100, dot11p::AccessCategory::Background));  // queued DP3
  dcc.send(frame_of(100, dot11p::AccessCategory::Voice));       // queued DP0
  rig.sched.run_until(1_s);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], dot11p::AccessCategory::Voice);       // DENM-class first
  EXPECT_EQ(order[2], dot11p::AccessCategory::Background);
}

TEST(ReactiveDcc, QueueOverflowDropsOldest) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  rig.add_radio({20, 0});
  ChannelProbe probe{rig.sched, radio};
  ReactiveDccConfig config;
  config.queue_capacity_per_profile = 2;
  ReactiveDcc dcc{rig.sched, radio, probe, config};
  for (int i = 0; i < 6; ++i) dcc.send(frame_of(100));
  EXPECT_GT(dcc.stats().dropped_queue_full, 0u);
  EXPECT_LE(dcc.queue_depth(), 2u);
}

TEST(ReactiveDcc, ExpiredQueuedPacketsAreDropped) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  auto& rx = rig.add_radio({20, 0});
  int received = 0;
  rx.set_receive_callback([&](const dot11p::Frame&, const dot11p::RxInfo&) { ++received; });
  ChannelProbe probe{rig.sched, radio};
  ReactiveDccConfig config;
  config.queued_packet_lifetime = 10_ms;  // shorter than the 60 ms gate
  ReactiveDcc dcc{rig.sched, radio, probe, config};
  dcc.send(frame_of(100));  // passes
  dcc.send(frame_of(100));  // queued, will expire before the gate reopens
  rig.sched.run_until(1_s);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(dcc.stats().dropped_expired, 1u);
}

TEST(AdaptiveDcc, RateControllerMovesTowardTargetCbr) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  ChannelProbe probe{rig.sched, radio};
  AdaptiveDcc dcc{rig.sched, radio, probe};
  EXPECT_DOUBLE_EQ(dcc.rate_hz(), 25.0);  // starts at the cap
  // Overloaded channel: the rate must fall.
  for (int i = 0; i < 200; ++i) dcc.on_channel_load(0.95);
  EXPECT_LT(dcc.rate_hz(), 5.0);
  const double low = dcc.rate_hz();
  // Channel clears: the rate recovers.
  for (int i = 0; i < 400; ++i) dcc.on_channel_load(0.1);
  EXPECT_GT(dcc.rate_hz(), low * 2);
  EXPECT_LE(dcc.rate_hz(), 25.0);
}

TEST(AdaptiveDcc, GateSpacingFollowsTheRate) {
  Rig rig;
  auto& radio = rig.add_radio({0, 0});
  auto& rx = rig.add_radio({20, 0});
  std::vector<sim::SimTime> rx_times;
  rx.set_receive_callback([&](const dot11p::Frame&, const dot11p::RxInfo& info) {
    rx_times.push_back(info.rx_time);
  });
  ChannelProbe probe{rig.sched, radio};
  AdaptiveDccConfig config;
  config.queued_packet_lifetime = 60_s;
  AdaptiveDcc dcc{rig.sched, radio, probe, config};
  // Pin the rate low (heavy load reported).
  for (int i = 0; i < 300; ++i) dcc.on_channel_load(0.95);
  const auto gap = dcc.current_min_gap();
  ASSERT_GT(gap, 100_ms);
  for (int i = 0; i < 5; ++i) dcc.send(frame_of(100));
  rig.sched.run_until(30_s);
  ASSERT_EQ(rx_times.size(), 5u);
  for (std::size_t i = 1; i < rx_times.size(); ++i) {
    EXPECT_GE(rx_times[i] - rx_times[i - 1], gap - 1_ms);
  }
}

TEST(AdaptiveDcc, PopulationConvergesFairly) {
  // Several saturating stations sharing one channel: LIMERIC's fixed point
  // gives every station roughly the same rate and a bounded total load.
  Rig rig;
  struct Station {
    dot11p::Radio* radio;
    std::unique_ptr<ChannelProbe> probe;
    std::unique_ptr<AdaptiveDcc> dcc;
    sim::EventHandle offer_timer;
  };
  std::vector<Station> stations;
  for (int i = 0; i < 4; ++i) {
    Station st;
    st.radio = &rig.add_radio({5.0 * i, 0});
    st.probe = std::make_unique<ChannelProbe>(rig.sched, *st.radio);
    st.probe->start();
    st.dcc = std::make_unique<AdaptiveDcc>(rig.sched, *st.radio, *st.probe);
    stations.push_back(std::move(st));
  }
  // Saturating offer: every station wants 50 Hz of 800-byte frames. The
  // self-rescheduling closures capture a raw self-pointer (an owning
  // capture would be a shared_ptr cycle); `offers` keeps them alive.
  std::vector<std::unique_ptr<std::function<void()>>> offers;
  for (auto& st : stations) {
    auto offer = std::make_unique<std::function<void()>>();
    *offer = [&rig, dcc = st.dcc.get(), self = offer.get()] {
      dcc->send(frame_of(800));
      rig.sched.schedule_in(20_ms, *self);
    };
    rig.sched.schedule_in(20_ms, *offer);
    offers.push_back(std::move(offer));
  }
  rig.sched.run_until(60_s);

  double min_rate = 1e9;
  double max_rate = 0;
  for (auto& st : stations) {
    min_rate = std::min(min_rate, st.dcc->rate_hz());
    max_rate = std::max(max_rate, st.dcc->rate_hz());
  }
  // Fairness: rates within a factor ~2 of each other after convergence.
  EXPECT_LT(max_rate / min_rate, 2.0);
  // And the channel is not saturated: measured CBR near or below target.
  EXPECT_LT(stations[0].probe->cbr(), 0.8);
}

TEST(ReactiveDcc, CongestionRaisesStateAndThrottles) {
  Rig rig;
  // One DCC-managed station plus three offered-load stations saturating
  // the channel with back-to-back traffic.
  auto& managed = rig.add_radio({0, 0});
  ChannelProbe probe{rig.sched, managed};
  probe.start();
  ReactiveDcc dcc{rig.sched, managed, probe, {}, nullptr, "dcc"};

  std::vector<dot11p::Radio*> loaders;
  for (int i = 0; i < 3; ++i) {
    loaders.push_back(&rig.add_radio({5.0 * (i + 1), 0}));
  }
  // Saturating load: each loader sends a 500-byte frame every 1.5 ms.
  for (int i = 0; i < 2000; ++i) {
    rig.sched.schedule_at(1500_us * i, [&rig, &loaders, i] {
      loaders[i % loaders.size()]->send(frame_of(500));
    });
  }
  // The managed station offers CAM-like traffic through the DCC.
  for (int i = 0; i < 30; ++i) {
    rig.sched.schedule_at(100_ms * i, [&dcc] { dcc.send(frame_of(300)); });
  }
  rig.sched.run_until(3_s);
  EXPECT_GT(probe.cbr(), 0.3);
  EXPECT_GT(dcc.state(), DccState::Relaxed);
  EXPECT_GT(dcc.stats().state_changes, 0u);
  // Throttled: the gate now requires more than the Relaxed 60 ms.
  EXPECT_GE(dcc.current_min_gap(), 100_ms);
}

}  // namespace
}  // namespace rst::its::dcc
