// Regression tests for two delivery-accounting bugs:
//
//  * CellularNetwork::send counted payloads addressed to a missing endpoint
//    (or one without a receive callback) as `sent` but neither `delivered`
//    nor `lost`, and still recorded a latency sample for a payload that
//    never traversed the network — so the stats never balanced.
//  * HttpLan only evaluated NodeDown at request time; a window opening
//    while the request was in flight let a crashed host serve it anyway.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rst/cellular/cellular_link.hpp"
#include "rst/middleware/http.hpp"
#include "rst/sim/fault_plan.hpp"

namespace rst {
namespace {

using namespace rst::sim::literals;

// --- CellularNetwork conservation -----------------------------------------

TEST(CellularAccounting, UnknownEndpointIsUndeliverableNotSilent) {
  sim::Scheduler sched;
  cellular::CellularNetwork net{sched, sim::RandomStream{1, "cell"}};
  net.create_endpoint("a");
  net.send("a", "ghost", {1, 2, 3});
  sched.run();
  const auto& s = net.stats();
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.undeliverable, 1u);
  EXPECT_EQ(s.delivered, 0u);
  EXPECT_EQ(s.lost, 0u);
  EXPECT_EQ(s.latency_ms.count(), 0u);  // never traversed the network
}

TEST(CellularAccounting, EndpointWithoutCallbackIsUndeliverable) {
  sim::Scheduler sched;
  cellular::CellularNetwork net{sched, sim::RandomStream{2, "cell"}};
  net.create_endpoint("a");
  net.create_endpoint("mute");  // exists but never installs a callback
  net.send("a", "mute", {1});
  sched.run();
  EXPECT_EQ(net.stats().undeliverable, 1u);
  EXPECT_EQ(net.stats().sent, net.stats().delivered + net.stats().lost +
                                  net.stats().undeliverable);
}

TEST(CellularAccounting, CallbackRemovedInFlightCountsUndeliverableAtDelivery) {
  sim::Scheduler sched;
  cellular::CellularNetwork net{sched, sim::RandomStream{3, "cell"}};
  net.create_endpoint("a");
  auto& b = net.create_endpoint("b");
  b.set_receive_callback([](const std::vector<std::uint8_t>&, const std::string&) {});
  net.send("a", "b", {1});
  // The payload passed the send-time check and is now in flight; the
  // endpoint drops its callback before it lands.
  b.set_receive_callback(nullptr);
  sched.run();
  const auto& s = net.stats();
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.delivered, 0u);
  EXPECT_EQ(s.undeliverable, 1u);
}

TEST(CellularAccounting, RandomSendMatrixConserves) {
  sim::Scheduler sched;
  cellular::CellularConfig config;
  config.loss_probability = 0.3;  // exercise all three outcomes
  cellular::CellularNetwork net{sched, sim::RandomStream{4, "cell"}, config};
  std::uint64_t received = 0;
  for (const char* name : {"a", "b", "c"}) {
    net.create_endpoint(name).set_receive_callback(
        [&](const std::vector<std::uint8_t>&, const std::string&) { ++received; });
  }
  net.create_endpoint("mute");
  const std::vector<std::string> dests{"a", "b", "c", "mute", "ghost"};
  sim::RandomStream pick{5, "pick"};
  for (int i = 0; i < 300; ++i) {
    const auto& to = dests[static_cast<std::size_t>(pick.uniform_int(0, 4))];
    net.send("a", to, {static_cast<std::uint8_t>(i)});
  }
  sched.run();
  const auto& s = net.stats();
  EXPECT_EQ(s.sent, 300u);
  EXPECT_EQ(s.sent, s.delivered + s.lost + s.undeliverable);
  EXPECT_EQ(s.delivered, received);
  EXPECT_EQ(s.latency_ms.count(), s.delivered);
  // All three outcome classes must actually occur for this to regress well.
  EXPECT_GT(s.delivered, 0u);
  EXPECT_GT(s.lost, 0u);
  EXPECT_GT(s.undeliverable, 0u);
}

// --- HttpLan NodeDown at dispatch time ------------------------------------

middleware::HttpLanConfig quiet_lan() {
  middleware::HttpLanConfig config;
  config.one_way_jitter = sim::SimTime::zero();
  config.server_processing_jitter = sim::SimTime::zero();
  return config;  // deterministic: dispatch at exactly 250us + 400us
}

TEST(HttpNodeDown, WindowOpeningInFlightLosesRequest) {
  sim::Scheduler sched;
  middleware::HttpLan lan{sched, sim::RandomStream{6, "lan"}, quiet_lan()};
  middleware::HttpHost host{lan, "obu"};
  host.handle("/denm", [](const middleware::HttpRequest&) {
    return middleware::HttpResponse{200, "served"};
  });
  // Host crashes at 400us — after the request leaves, before it dispatches.
  sim::FaultPlan plan;
  plan.clauses.push_back({sim::FaultKind::NodeDown, "obu", sim::SimTime::microseconds(400),
                          sim::SimTime::milliseconds(50), 1.0});
  sim::FaultInjector faults{sched, sim::RandomStream{7, "faults"}, plan};
  lan.set_fault_injector(&faults);

  int status = -1;
  sim::SimTime responded_at;
  lan.request("obu", {"POST", "/denm", ""}, [&](const middleware::HttpResponse& resp) {
    status = resp.status;
    responded_at = sched.now();
  });
  sched.run();
  EXPECT_EQ(status, 0);
  EXPECT_EQ(lan.requests_lost(), 1u);
  // Same caller-visible timing as a request-time loss: status 0 exactly
  // loss_timeout after the request was issued.
  EXPECT_EQ(responded_at, sim::SimTime::milliseconds(100));
}

TEST(HttpNodeDown, WindowClosedBeforeDispatchServes) {
  sim::Scheduler sched;
  middleware::HttpLan lan{sched, sim::RandomStream{8, "lan"}, quiet_lan()};
  middleware::HttpHost host{lan, "obu"};
  host.handle("/denm", [](const middleware::HttpRequest&) {
    return middleware::HttpResponse{200, "served"};
  });
  // A blip that is over by dispatch time (650us): the host restarted in
  // time to serve the request.
  sim::FaultPlan plan;
  plan.clauses.push_back({sim::FaultKind::NodeDown, "obu", sim::SimTime::microseconds(100),
                          sim::SimTime::microseconds(300), 1.0});
  sim::FaultInjector faults{sched, sim::RandomStream{9, "faults"}, plan};
  lan.set_fault_injector(&faults);

  int status = -1;
  sched.post_at(sim::SimTime::microseconds(350), [&] {
    lan.request("obu", {"POST", "/denm", ""},
                [&](const middleware::HttpResponse& resp) { status = resp.status; });
  });
  sched.run();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(lan.requests_lost(), 0u);
}

TEST(HttpNodeDown, ChaosWindowMidRunLosesOnlyCoveredRequests) {
  // Requests issued every 10ms against a 25ms..55ms NodeDown window: the
  // ones dispatching inside the window (crash discovered at request OR
  // dispatch time) are lost, the rest are served.
  sim::Scheduler sched;
  middleware::HttpLan lan{sched, sim::RandomStream{10, "lan"}, quiet_lan()};
  middleware::HttpHost host{lan, "rsu"};
  host.handle("/trigger", [](const middleware::HttpRequest&) {
    return middleware::HttpResponse{200, "ok"};
  });
  sim::FaultPlan plan;
  plan.clauses.push_back({sim::FaultKind::NodeDown, "rsu", sim::SimTime::milliseconds(25),
                          sim::SimTime::milliseconds(55), 1.0});
  sim::FaultInjector faults{sched, sim::RandomStream{11, "faults"}, plan};
  lan.set_fault_injector(&faults);

  int served = 0;
  int lost = 0;
  for (int i = 0; i < 10; ++i) {
    sched.post_at(sim::SimTime::milliseconds(10 * i), [&] {
      lan.request("rsu", {"POST", "/trigger", ""},
                  [&](const middleware::HttpResponse& resp) {
                    (resp.status == 200 ? served : lost) += 1;
                  });
    });
  }
  sched.run();
  // Requests at 30, 40, 50 ms fall inside the window; all others dispatch
  // at t + 650us, clear of it.
  EXPECT_EQ(lost, 3);
  EXPECT_EQ(served, 7);
  EXPECT_EQ(lan.requests_lost(), 3u);
  EXPECT_EQ(lan.requests_sent(), 10u);
}

}  // namespace
}  // namespace rst
