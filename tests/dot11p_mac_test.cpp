#include <gtest/gtest.h>

#include <memory>

#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"

namespace rst::dot11p {
namespace {

using namespace rst::sim::literals;

struct Rig {
  sim::Scheduler sched;
  sim::RandomStream rng{1234, "mac_test"};
  std::unique_ptr<Medium> medium;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::vector<std::pair<Frame, RxInfo>>> received;

  explicit Rig(double shadowing_sigma = 0.0, double exponent = 2.0) {
    ChannelModel channel;
    channel.path_loss = std::make_shared<LogDistanceModel>(LogDistanceModel::its_g5(exponent));
    channel.shadowing_sigma_db = shadowing_sigma;
    medium = std::make_unique<Medium>(sched, rng.child("medium"), channel);
  }

  Radio& add_radio(geo::Vec2 pos, RadioConfig config = {}) {
    const auto index = radios.size();
    received.emplace_back();
    radios.push_back(std::make_unique<Radio>(
        *medium, config, [pos] { return pos; }, rng.child("radio" + std::to_string(index)),
        "radio" + std::to_string(index)));
    radios.back()->set_receive_callback([this, index](const Frame& f, const RxInfo& info) {
      received[index].emplace_back(f, info);
    });
    return *radios.back();
  }
};

Frame make_frame(std::size_t payload_size = 100, AccessCategory ac = AccessCategory::Video) {
  Frame f;
  f.payload.assign(payload_size, 0xAB);
  f.ac = ac;
  return f;
}

TEST(Mac, BroadcastReachesAllNearbyRadios) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({10, 0});
  rig.add_radio({0, 20});
  tx.send(make_frame());
  rig.sched.run();
  EXPECT_EQ(rig.received[1].size(), 1u);
  EXPECT_EQ(rig.received[2].size(), 1u);
  EXPECT_EQ(rig.received[0].size(), 0u);  // no self-reception
  EXPECT_EQ(rig.received[1][0].first.payload.size(), 100u);
  EXPECT_EQ(rig.received[1][0].second.src_mac, tx.mac_address());
}

TEST(Mac, ImmediateAccessAfterIdleAifs) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({5, 0});
  // Idle since t=0; enqueue at t=1ms (idle >> AIFS) -> immediate tx.
  rig.sched.schedule_at(1_ms, [&] { tx.send(make_frame()); });
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 1u);
  const auto airtime = frame_airtime(100 + kMacOverheadBytes, Mcs::Qpsk12);
  EXPECT_EQ(rig.received[1][0].second.rx_time, 1_ms + airtime);
}

TEST(Mac, RssiReflectsDistance) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({5, 0});
  rig.add_radio({50, 0});
  tx.send(make_frame());
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 1u);
  ASSERT_EQ(rig.received[2].size(), 1u);
  EXPECT_GT(rig.received[1][0].second.rssi_dbm, rig.received[2][0].second.rssi_dbm);
  // Closer receiver also reports healthy SINR.
  EXPECT_GT(rig.received[1][0].second.sinr_db, 20.0);
}

TEST(Mac, OutOfRangeRadioHearsNothing) {
  Rig rig{0.0, 3.5};  // harsh propagation
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({4000, 0});
  tx.send(make_frame());
  rig.sched.run();
  EXPECT_TRUE(rig.received[1].empty());
  EXPECT_EQ(rig.medium->stats().dropped_below_sensitivity, 1u);
}

TEST(Mac, HalfDuplexDropsConcurrentTransmitters) {
  // a and b sit in the window between carrier-sense threshold (-85 dBm)
  // and receive sensitivity (-95 dBm): they can decode each other's frames
  // but do not defer to each other, so overlapping transmissions happen.
  Rig rig;
  RadioConfig weak;
  weak.tx_power_dbm = 0.0;
  auto& a = rig.add_radio({0, 0}, weak);
  auto& b = rig.add_radio({200, 0}, weak);
  const double p = rig.medium->mean_rx_power_dbm(a, b);
  ASSERT_LT(p, weak.cs_threshold_dbm);
  ASSERT_GT(p, weak.rx_sensitivity_dbm);

  a.send(make_frame());
  rig.sched.schedule_at(100_us, [&] { b.send(make_frame()); });  // during a's airtime
  rig.sched.run();
  // Each radio was transmitting during the other's frame: half-duplex loss.
  EXPECT_TRUE(rig.received[0].empty());
  EXPECT_TRUE(rig.received[1].empty());
  EXPECT_EQ(rig.medium->stats().dropped_half_duplex, 2u);
}

TEST(Mac, CarrierSenseDefersSecondTransmitter) {
  Rig rig;
  auto& a = rig.add_radio({0, 0});
  auto& b = rig.add_radio({5, 0});
  rig.add_radio({2.5, 5});
  a.send(make_frame(400));
  // b's frame arrives while a is on air: b must defer, both frames get through.
  rig.sched.schedule_at(100_us, [&] { b.send(make_frame(400)); });
  rig.sched.run();
  ASSERT_EQ(rig.received[2].size(), 2u);
  // No collision drops.
  EXPECT_EQ(rig.medium->stats().dropped_error, 0u);
  EXPECT_EQ(rig.medium->stats().dropped_half_duplex, 0u);
  // The second frame is delayed until after the first completes.
  EXPECT_GT(rig.received[2][1].second.rx_time,
            rig.received[2][0].second.rx_time + frame_airtime(400 + kMacOverheadBytes, Mcs::Qpsk12) -
                1_ms);
}

TEST(Mac, HiddenTerminalsCollideAtTheMiddleReceiver) {
  // a and c are out of carrier-sense range of each other but both reach b.
  Rig rig{0.0, 2.5};
  RadioConfig weak;
  weak.tx_power_dbm = 20.0;
  weak.cs_threshold_dbm = -80.0;
  auto& a = rig.add_radio({0, 0}, weak);
  rig.add_radio({150, 0}, weak);  // b in the middle
  auto& c = rig.add_radio({300, 0}, weak);

  // Sanity: a cannot carrier-sense c.
  EXPECT_LT(rig.medium->mean_rx_power_dbm(a, c), weak.cs_threshold_dbm);

  int delivered_to_b = 0;
  for (int i = 0; i < 50; ++i) {
    rig.sched.schedule_at(10_ms * i, [&] { a.send(make_frame(400)); });
    rig.sched.schedule_at(10_ms * i + 50_us, [&] { c.send(make_frame(400)); });
  }
  rig.sched.run();
  delivered_to_b = static_cast<int>(rig.received[1].size());
  // Overlapping transmissions at comparable power: most should be lost.
  EXPECT_LT(delivered_to_b, 50);
  EXPECT_GT(rig.medium->stats().dropped_error, 10u);
}

TEST(Mac, EdcaQueuesDrainInBurst) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({10, 0});
  for (int i = 0; i < 20; ++i) tx.send(make_frame(200));
  rig.sched.run();
  EXPECT_EQ(rig.received[1].size(), 20u);
  EXPECT_EQ(tx.stats().tx_frames, 20u);
  // Post-tx backoff spaces the frames by at least AIFS.
  for (std::size_t i = 1; i < rig.received[1].size(); ++i) {
    const auto gap = rig.received[1][i].second.rx_time - rig.received[1][i - 1].second.rx_time;
    EXPECT_GE(gap, frame_airtime(200 + kMacOverheadBytes, Mcs::Qpsk12) + aifs(AccessCategory::Video));
  }
}

TEST(Mac, HigherPriorityAcWinsStatistically) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({10, 0});
  // Saturate both AC_VO and AC_BK, then count which drains first.
  for (int i = 0; i < 10; ++i) {
    tx.send(make_frame(100, AccessCategory::Background));
    tx.send(make_frame(100, AccessCategory::Voice));
  }
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 20u);
  // The first several deliveries should be dominated by AC_VO frames.
  int voice_in_first_half = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (rig.received[1][i].first.ac == AccessCategory::Voice) ++voice_in_first_half;
  }
  EXPECT_GE(voice_in_first_half, 7);
}

TEST(Mac, ShadowingIntroducesLossAtMarginalRange) {
  Rig rig{8.0, 2.8};
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({380, 0});  // marginal link under n=2.8
  for (int i = 0; i < 100; ++i) {
    rig.sched.schedule_at(5_ms * i, [&] { tx.send(make_frame()); });
  }
  rig.sched.run();
  // Some but not all frames arrive: the shadowing draw matters.
  EXPECT_GT(rig.received[1].size(), 5u);
  EXPECT_LT(rig.received[1].size(), 100u);
}

TEST(Mac, NakagamiFadingCausesLossOnMarginalLink) {
  // Same marginal link, with and without small-scale fading: fading must
  // introduce additional losses (deep fades) at equal mean power.
  const auto run = [](bool fading) {
    Rig rig{0.0, 2.8};
    rig.medium = nullptr;  // rebuild the medium with the fading flag
    ChannelModel channel;
    channel.path_loss = std::make_shared<LogDistanceModel>(LogDistanceModel::its_g5(2.8));
    channel.fading = fading ? FadingModel::Nakagami : FadingModel::None;
    channel.nakagami_m = 1.0;  // Rayleigh: harshest
    rig.medium = std::make_unique<Medium>(rig.sched, rig.rng.child("m2"), channel);
    auto& tx = rig.add_radio({0, 0});
    rig.add_radio({330, 0});
    for (int i = 0; i < 200; ++i) {
      rig.sched.schedule_at(5_ms * i, [&] { tx.send(make_frame()); });
    }
    rig.sched.run();
    return rig.received[1].size();
  };
  const auto without = run(false);
  const auto with = run(true);
  EXPECT_GT(without, 175u);        // near-solid link without fading
  EXPECT_LT(with, without - 20);   // Rayleigh fades kill noticeably more
  EXPECT_GT(with, 50u);            // but most still get through
}

TEST(Mac, TransmitQueueBoundedDropsOldest) {
  Rig rig;
  RadioConfig config;
  config.max_queue_per_ac = 4;
  auto& tx = rig.add_radio({0, 0}, config);
  auto& blocker = rig.add_radio({5, 0});
  rig.add_radio({10, 0});
  // Occupy the channel with a long frame so tx cannot drain its queue.
  blocker.send(make_frame(2000));
  rig.sched.run(1);  // blocker starts transmitting
  for (int i = 0; i < 10; ++i) tx.send(make_frame(100));
  EXPECT_EQ(tx.stats().queue_drops, 6u);  // 10 offered, 4 kept
  rig.sched.run();
  // Exactly the 4 surviving frames go out.
  EXPECT_EQ(tx.stats().tx_frames, 4u);
}

TEST(Mac, DetachedRadioStopsReceiving) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({10, 0});
  tx.send(make_frame());
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 1u);
  rig.radios[1].reset();  // detaches from the medium
  tx.send(make_frame());
  rig.sched.run();
  EXPECT_EQ(rig.received[1].size(), 1u);
}

}  // namespace
}  // namespace rst::dot11p
