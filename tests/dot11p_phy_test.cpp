#include <gtest/gtest.h>

#include "rst/dot11p/channel.hpp"
#include "rst/dot11p/phy_params.hpp"

namespace rst::dot11p {
namespace {

using namespace rst::sim::literals;

TEST(PhyParams, DataRatesMatch80211pAt10Mhz) {
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Bpsk12), 3.0);
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Bpsk34), 4.5);
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Qpsk12), 6.0);
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Qpsk34), 9.0);
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Qam16_12), 12.0);
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Qam16_34), 18.0);
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Qam64_23), 24.0);
  EXPECT_DOUBLE_EQ(data_rate_mbps(Mcs::Qam64_34), 27.0);
}

TEST(PhyParams, FrameAirtimeStructure) {
  // 0-byte PSDU still needs preamble + SIGNAL + 1 symbol (service+tail).
  EXPECT_EQ(frame_airtime(0, Mcs::Qpsk12), kPreambleDuration + kSignalDuration + kSymbolDuration);
  // 100-byte PSDU at 6 Mbit/s: 16+800+6=822 bits / 48 = 17.125 -> 18 symbols.
  EXPECT_EQ(frame_airtime(100, Mcs::Qpsk12),
            kPreambleDuration + kSignalDuration + 18 * kSymbolDuration);
}

TEST(PhyParams, AirtimeMonotoneInLengthAndRate) {
  for (std::size_t len = 0; len < 1000; len += 50) {
    EXPECT_LE(frame_airtime(len, Mcs::Qpsk12), frame_airtime(len + 50, Mcs::Qpsk12));
    EXPECT_LE(frame_airtime(len, Mcs::Qam64_34), frame_airtime(len, Mcs::Qpsk12));
  }
}

TEST(PhyParams, EdcaParametersOrderedByPriority) {
  // Higher-priority ACs get shorter AIFS and smaller contention windows.
  EXPECT_LT(aifs(AccessCategory::Voice), aifs(AccessCategory::Video));
  EXPECT_LT(aifs(AccessCategory::Video), aifs(AccessCategory::BestEffort));
  EXPECT_LT(aifs(AccessCategory::BestEffort), aifs(AccessCategory::Background));
  EXPECT_LE(edca_params(AccessCategory::Voice).cw_min, edca_params(AccessCategory::Video).cw_min);
  EXPECT_LE(edca_params(AccessCategory::Video).cw_min,
            edca_params(AccessCategory::BestEffort).cw_min);
}

TEST(PhyParams, AifsFormula) {
  // AIFS = SIFS + AIFSN * slot; AC_VO has AIFSN 2 on the G5-CCH.
  EXPECT_EQ(aifs(AccessCategory::Voice), kSifs + 2 * kSlotTime);
  EXPECT_EQ(aifs(AccessCategory::Background), kSifs + 9 * kSlotTime);
}

TEST(PhyParams, NoiseFloor) {
  // kTB for 10 MHz is -104 dBm; a 6 dB NF receiver sees -98 dBm.
  EXPECT_NEAR(noise_floor_dbm(0.0), -104.0, 0.1);
  EXPECT_NEAR(noise_floor_dbm(6.0), -98.0, 0.1);
}

TEST(PhyParams, DbmConversionsRoundTrip) {
  for (double dbm : {-100.0, -50.0, 0.0, 23.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
}

TEST(PhyParams, PacketErrorRateLimits) {
  // Very high SINR: essentially error-free. Very low SINR: certain loss.
  EXPECT_LT(packet_error_rate(30.0, 100, Mcs::Qpsk12), 1e-6);
  EXPECT_GT(packet_error_rate(-5.0, 100, Mcs::Qpsk12), 0.99);
}

TEST(PhyParams, PacketErrorRateMonotone) {
  double prev = 1.0;
  for (double sinr = -5.0; sinr <= 30.0; sinr += 1.0) {
    const double per = packet_error_rate(sinr, 200, Mcs::Qpsk12);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
  // Longer frames are more fragile at equal SINR.
  EXPECT_GT(packet_error_rate(7.0, 1000, Mcs::Qpsk12), packet_error_rate(7.0, 50, Mcs::Qpsk12));
  // Denser constellations are more fragile at equal SINR.
  EXPECT_GT(packet_error_rate(10.0, 200, Mcs::Qam64_34),
            packet_error_rate(10.0, 200, Mcs::Bpsk12));
}

TEST(Channel, FreeSpaceMatchesFriis) {
  FreeSpaceModel model;  // 5.9 GHz
  // FSPL(100 m, 5.9 GHz) = 32.44 + 20log10(0.1 km) + 20log10(5900 MHz) ~ 87.9 dB
  EXPECT_NEAR(model.loss_db({0, 0}, {100, 0}), 87.86, 0.1);
  // +20 dB per decade.
  EXPECT_NEAR(model.loss_db({0, 0}, {1000, 0}) - model.loss_db({0, 0}, {100, 0}), 20.0, 1e-6);
}

TEST(Channel, LogDistanceExponent) {
  const auto model = LogDistanceModel::its_g5(3.0);
  EXPECT_NEAR(model.loss_db({0, 0}, {100, 0}) - model.loss_db({0, 0}, {10, 0}), 30.0, 1e-9);
  // At the 1 m reference it matches free space.
  FreeSpaceModel fs;
  EXPECT_NEAR(model.loss_db({0, 0}, {1, 0}), fs.loss_db({0, 0}, {1, 0}), 1e-6);
}

TEST(Channel, ClampsNearZeroDistance) {
  FreeSpaceModel model;
  EXPECT_TRUE(std::isfinite(model.loss_db({0, 0}, {0, 0})));
}

TEST(Channel, SegmentIntersection) {
  // Crossing.
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  // Parallel non-touching.
  EXPECT_FALSE(segments_intersect({0, 0}, {2, 0}, {0, 1}, {2, 1}));
  // Shared endpoint counts.
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  // Collinear overlapping.
  EXPECT_TRUE(segments_intersect({0, 0}, {3, 0}, {1, 0}, {2, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
  // T-shape touch.
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, -1}, {1, 0}));
}

TEST(Channel, DualSlopeContinuousAtBreakpoint) {
  const auto model = DualSlopeModel::its_g5(2.0, 3.8, 100.0);
  const double just_before = model.loss_db({0, 0}, {99.999, 0});
  const double just_after = model.loss_db({0, 0}, {100.001, 0});
  EXPECT_NEAR(just_before, just_after, 0.01);
  // Slopes: +20 dB/decade before, +38 dB/decade after.
  EXPECT_NEAR(model.loss_db({0, 0}, {100, 0}) - model.loss_db({0, 0}, {10, 0}), 20.0, 0.01);
  EXPECT_NEAR(model.loss_db({0, 0}, {1000, 0}) - model.loss_db({0, 0}, {100, 0}), 38.0, 0.01);
}

TEST(Channel, DualSlopeMatchesSingleSlopeBelowBreakpoint) {
  const auto dual = DualSlopeModel::its_g5(2.1, 3.8, 100.0);
  const auto single = LogDistanceModel::its_g5(2.1);
  for (double d : {1.0, 10.0, 50.0, 99.0}) {
    EXPECT_NEAR(dual.loss_db({0, 0}, {d, 0}), single.loss_db({0, 0}, {d, 0}), 1e-9);
  }
}

TEST(Channel, ObstacleShadowingAddsWallLoss) {
  auto base = std::make_unique<LogDistanceModel>(LogDistanceModel::its_g5(2.0));
  const double base_loss = base->loss_db({0, 0}, {10, 0});
  ObstacleShadowingModel model{std::move(base), {{.a = {5, -5}, .b = {5, 5}, .obstruction_loss_db = 20.0}}};
  EXPECT_TRUE(model.is_nlos({0, 0}, {10, 0}));
  EXPECT_NEAR(model.loss_db({0, 0}, {10, 0}), base_loss + 20.0, 1e-9);
  // A path that dodges the wall pays no penalty.
  EXPECT_FALSE(model.is_nlos({0, 0}, {0, 10}));
}

TEST(Channel, MultipleWallsAccumulate) {
  auto base = std::make_unique<LogDistanceModel>(LogDistanceModel::its_g5(2.0));
  const double base_loss = base->loss_db({0, 0}, {10, 0});
  ObstacleShadowingModel model{std::move(base),
                               {{.a = {3, -5}, .b = {3, 5}, .obstruction_loss_db = 10.0},
                                {.a = {6, -5}, .b = {6, 5}, .obstruction_loss_db = 15.0}}};
  EXPECT_NEAR(model.loss_db({0, 0}, {10, 0}), base_loss + 25.0, 1e-9);
}

}  // namespace
}  // namespace rst::dot11p
