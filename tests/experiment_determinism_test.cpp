// Serial-vs-parallel golden equivalence: the same experiment configuration
// run with 1, 2 and 8 threads must produce trial-by-trial bitwise-equal
// TrialResults and identical ExperimentSummary statistics — the guarantee
// that lets every bench/table in the repo adopt the thread-count knob
// without changing a single reported number.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "rst/core/experiment.hpp"

namespace rst {
namespace {

// Bit-pattern comparison: double equality (==) would already be expected to
// hold, but the contract here is stronger — the bytes must match.
std::uint64_t bits(double x) {
  std::uint64_t out = 0;
  static_assert(sizeof out == sizeof x);
  std::memcpy(&out, &x, sizeof out);
  return out;
}

void expect_trials_bitwise_equal(const core::TrialResult& a, const core::TrialResult& b,
                                 std::size_t index) {
  SCOPED_TRACE(::testing::Message() << "trial " << index);
  EXPECT_EQ(a.stopped_by_denm, b.stopped_by_denm);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.t_cross_actual, b.t_cross_actual);
  EXPECT_EQ(a.t_detection, b.t_detection);
  EXPECT_EQ(a.t_rsu_send, b.t_rsu_send);
  EXPECT_EQ(a.t_obu_receive, b.t_obu_receive);
  EXPECT_EQ(a.t_power_cut, b.t_power_cut);
  EXPECT_EQ(a.t_halt, b.t_halt);
  EXPECT_EQ(bits(a.meas_detection_to_rsu_ms), bits(b.meas_detection_to_rsu_ms));
  EXPECT_EQ(bits(a.meas_rsu_to_obu_ms), bits(b.meas_rsu_to_obu_ms));
  EXPECT_EQ(bits(a.meas_obu_to_actuator_ms), bits(b.meas_obu_to_actuator_ms));
  EXPECT_EQ(bits(a.meas_total_ms), bits(b.meas_total_ms));
  EXPECT_EQ(bits(a.braking_distance_m), bits(b.braking_distance_m));
  EXPECT_EQ(bits(a.stop_distance_to_camera_m), bits(b.stop_distance_to_camera_m));
  EXPECT_EQ(bits(a.detection_distance_m), bits(b.detection_distance_m));
  EXPECT_EQ(bits(a.speed_at_detection_mps), bits(b.speed_at_detection_mps));
}

void expect_stats_bitwise_equal(const sim::RunningStats& a, const sim::RunningStats& b,
                                const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(bits(a.mean()), bits(b.mean()));
  EXPECT_EQ(bits(a.variance()), bits(b.variance()));
  EXPECT_EQ(bits(a.population_variance()), bits(b.population_variance()));
  EXPECT_EQ(bits(a.min()), bits(b.min()));
  EXPECT_EQ(bits(a.max()), bits(b.max()));
}

void expect_summaries_bitwise_equal(const core::ExperimentSummary& a,
                                    const core::ExperimentSummary& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    expect_trials_bitwise_equal(a.trials[i], b.trials[i], i);
  }
  expect_stats_bitwise_equal(a.detection_to_rsu_ms, b.detection_to_rsu_ms, "detection_to_rsu_ms");
  expect_stats_bitwise_equal(a.rsu_to_obu_ms, b.rsu_to_obu_ms, "rsu_to_obu_ms");
  expect_stats_bitwise_equal(a.obu_to_actuator_ms, b.obu_to_actuator_ms, "obu_to_actuator_ms");
  expect_stats_bitwise_equal(a.total_ms, b.total_ms, "total_ms");
  expect_stats_bitwise_equal(a.braking_distance_m, b.braking_distance_m, "braking_distance_m");
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.total_samples_ms(), b.total_samples_ms());
  EXPECT_EQ(a.braking_samples_m(), b.braking_samples_m());
  // The acceptance criterion verbatim: the rendered report strings match
  // byte for byte.
  EXPECT_EQ(core::format_table2(a), core::format_table2(b));
  EXPECT_EQ(core::format_table3(a), core::format_table3(b));
}

TEST(ExperimentDeterminism, SerialAndParallelRunsAreBitwiseIdentical) {
  core::TestbedConfig config;
  config.seed = 42;
  constexpr int kTrials = 5;

  const auto serial = core::run_emergency_brake_experiment(config, kTrials, 1);
  const auto two_threads = core::run_emergency_brake_experiment(config, kTrials, 2);
  const auto eight_threads = core::run_emergency_brake_experiment(config, kTrials, 8);

  ASSERT_EQ(serial.trials.size(), static_cast<std::size_t>(kTrials));
  {
    SCOPED_TRACE("threads=1 vs threads=2");
    expect_summaries_bitwise_equal(serial, two_threads);
  }
  {
    SCOPED_TRACE("threads=1 vs threads=8");
    expect_summaries_bitwise_equal(serial, eight_threads);
  }
}

TEST(ExperimentDeterminism, AutoThreadCountMatchesSerial) {
  core::TestbedConfig config;
  config.seed = 1234;
  const auto serial = core::run_emergency_brake_experiment(config, 3, 1);
  const auto auto_threads = core::run_emergency_brake_experiment(config, 3, 0);
  expect_summaries_bitwise_equal(serial, auto_threads);
}

TEST(ExperimentDeterminism, RepeatedParallelRunsAgreeWithEachOther) {
  core::TestbedConfig config;
  config.seed = 99;
  const auto first = core::run_emergency_brake_experiment(config, 4, 4);
  const auto second = core::run_emergency_brake_experiment(config, 4, 4);
  expect_summaries_bitwise_equal(first, second);
}

TEST(ExperimentDeterminism, ThreadKnobHelpers) {
  EXPECT_GE(core::resolve_experiment_threads(0), 1u);
  EXPECT_EQ(core::resolve_experiment_threads(1), 1u);
  EXPECT_EQ(core::resolve_experiment_threads(6), 6u);

  ::unsetenv("RST_THREADS");
  EXPECT_EQ(core::experiment_threads_from_env(3), 3u);
  ::setenv("RST_THREADS", "8", 1);
  EXPECT_EQ(core::experiment_threads_from_env(3), 8u);
  ::setenv("RST_THREADS", "junk", 1);
  EXPECT_EQ(core::experiment_threads_from_env(2), 2u);
  ::unsetenv("RST_THREADS");
}

}  // namespace
}  // namespace rst
