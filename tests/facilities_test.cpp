#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "rst/its/facilities/ca_basic_service.hpp"
#include "rst/its/facilities/den_basic_service.hpp"
#include "rst/its/facilities/ldm.hpp"

namespace rst::its {
namespace {

using namespace rst::sim::literals;

/// Two stations with full GN/BTP plumbing and facilities on top.
struct Rig {
  sim::Scheduler sched;
  sim::RandomStream rng{55, "fac_test"};
  geo::LocalFrame frame{{41.1780, -8.6080}};
  std::unique_ptr<dot11p::Medium> medium;

  struct Station {
    std::unique_ptr<dot11p::Radio> radio;
    std::unique_ptr<GeoNetRouter> router;
    std::unique_ptr<Ldm> ldm;
    std::unique_ptr<CaBasicService> ca;
    std::unique_ptr<DenBasicService> den;
    CaVehicleData data{};
  };
  std::vector<std::unique_ptr<Station>> stations;

  Rig() {
    dot11p::ChannelModel channel;
    channel.path_loss =
        std::make_shared<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.0));
    medium = std::make_unique<dot11p::Medium>(sched, rng.child("medium"), channel);
  }

  Station& add_station(StationId id, geo::Vec2 pos, CaConfig ca_config = {}) {
    auto st = std::make_unique<Station>();
    st->data.position = pos;
    Station* raw = st.get();
    st->radio = std::make_unique<dot11p::Radio>(
        *medium, dot11p::RadioConfig{}, [raw] { return raw->data.position; },
        rng.child("r" + std::to_string(id)), "r" + std::to_string(id));
    st->router = std::make_unique<GeoNetRouter>(
        sched, *st->radio, frame, GnAddress::from_station(id),
        [raw] {
          return EgoState{raw->data.position, raw->data.speed_mps, raw->data.heading_rad};
        },
        GeoNetConfig{}, rng.child("g" + std::to_string(id)));
    st->ldm = std::make_unique<Ldm>(sched, frame);
    st->ca = std::make_unique<CaBasicService>(
        sched, *st->router, id, [raw] { return raw->data; }, ca_config, st->ldm.get());
    st->den = std::make_unique<DenBasicService>(sched, *st->router, id, nullptr, st->ldm.get());
    st->router->set_delivery_handler(
        [raw](const std::vector<std::uint8_t>& pdu, const GnDeliveryMeta& meta) {
          const auto parsed = BtpHeader::parse(pdu);
          if (parsed.header.destination_port == kBtpPortCam) {
            raw->ca->on_btp_payload(parsed.payload, meta);
          } else if (parsed.header.destination_port == kBtpPortDenm) {
            raw->den->on_btp_payload(parsed.payload, meta);
          }
        });
    stations.push_back(std::move(st));
    return *stations.back();
  }
};

DenmRequest basic_request(geo::Vec2 pos) {
  DenmRequest r;
  r.event_type = EventType::of(Cause::CollisionRisk, 2);
  r.event_position = pos;
  r.validity = 10_s;
  r.destination_area = geo::GeoArea::circle(pos, 200.0);
  return r;
}

TEST(CaService, StationaryStationSendsAtTGenCamMax) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  a.ca->start();
  rig.sched.run_until(10_s);
  // Stationary: one CAM per T_GenCam_max (1 s), i.e. ~10 in 10 s.
  EXPECT_GE(a.ca->stats().cams_sent, 9u);
  EXPECT_LE(a.ca->stats().cams_sent, 11u);
  EXPECT_EQ(b.ca->stats().cams_received, a.ca->stats().cams_sent);
  EXPECT_EQ(a.ca->stats().dynamics_triggers, 0u);
}

TEST(CaService, MovingStationTriggersOnPositionDelta) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  rig.add_station(2, {30, 0});
  a.data.speed_mps = 10.0;  // 10 m/s -> 4 m position delta every 400 ms
  a.ca->start();
  // Move the station continuously.
  std::function<void()> move = [&] {
    a.data.position.y += 1.0;  // 10 m/s sampled at 100 ms
    rig.sched.schedule_in(100_ms, move);
  };
  rig.sched.schedule_in(100_ms, move);
  rig.sched.run_until(5_s);
  // Far more CAMs than 1 Hz, and dynamics triggers occurred.
  EXPECT_GT(a.ca->stats().cams_sent, 8u);
  EXPECT_GT(a.ca->stats().dynamics_triggers, 3u);
  EXPECT_LT(a.ca->current_t_gen_cam(), 1000_ms);
}

TEST(CaService, SpeedDeltaTriggersGeneration) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  rig.add_station(2, {30, 0});
  a.ca->start();
  rig.sched.run_until(1500_ms);
  const auto before = a.ca->stats().cams_sent;
  a.data.speed_mps = 2.0;  // > 0.5 m/s delta
  rig.sched.run_until(1700_ms);
  EXPECT_GT(a.ca->stats().cams_sent, before);
  EXPECT_GE(a.ca->stats().dynamics_triggers, 1u);
}

TEST(CaService, ReceivedCamsPopulateLdm) {
  Rig rig;
  auto& a = rig.add_station(1, {5, 7});
  auto& b = rig.add_station(2, {30, 0});
  a.data.speed_mps = 1.5;
  a.ca->start();
  rig.sched.run_until(2_s);
  const auto entry = b.ldm->vehicle(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_NEAR(entry->position.x, 5.0, 0.2);
  EXPECT_NEAR(entry->position.y, 7.0, 0.2);
  EXPECT_NEAR(entry->speed_mps, 1.5, 0.05);
}

TEST(CaService, CamCallbackFires) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  int received = 0;
  b.ca->set_cam_callback([&](const Cam& cam, const GnDeliveryMeta&) {
    EXPECT_EQ(cam.header.station_id, 1u);
    ++received;
  });
  a.ca->start();
  rig.sched.run_until(2500_ms);
  EXPECT_GE(received, 2);
}

TEST(CaService, LowFrequencyContainerAttachedAtMostEvery500ms) {
  Rig rig;
  CaConfig fast;
  fast.position_delta_m = 1.0;  // 10 m/s -> dynamics trigger every check
  auto& a = rig.add_station(1, {0, 0}, fast);
  auto& b = rig.add_station(2, {30, 0});
  std::vector<std::pair<sim::SimTime, bool>> cams;  // (time, has LF)
  b.ca->set_cam_callback([&](const Cam& cam, const GnDeliveryMeta& meta) {
    cams.emplace_back(meta.delivered_at, cam.low_frequency.has_value());
  });
  a.data.speed_mps = 10.0;
  a.ca->start();
  std::function<void()> move = [&] {
    a.data.position.y += 1.0;
    rig.sched.schedule_in(100_ms, move);
  };
  rig.sched.schedule_in(100_ms, move);
  rig.sched.run_until(5_s);

  ASSERT_GE(cams.size(), 9u);  // dynamics-triggered, well above 1 Hz
  int with_lf = 0;
  sim::SimTime last_lf = -sim::SimTime::seconds(1);
  for (const auto& [when, has_lf] : cams) {
    if (has_lf) {
      ++with_lf;
      EXPECT_GE(when - last_lf, 450_ms);  // at most ~every 500 ms
      last_lf = when;
    }
  }
  EXPECT_GE(with_lf, 5);                                // roughly 2 Hz over 5 s
  EXPECT_LT(with_lf, static_cast<int>(cams.size()));    // not on every CAM
}

TEST(CaService, PathHistoryTracksTheTrajectory) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  auto& b = rig.add_station(2, {30, 0});
  std::optional<Cam> last_lf_cam;
  b.ca->set_cam_callback([&](const Cam& cam, const GnDeliveryMeta&) {
    if (cam.low_frequency) last_lf_cam = cam;
  });
  a.data.speed_mps = 10.0;
  a.ca->start();
  std::function<void()> move = [&] {
    a.data.position.y += 1.0;  // northbound, 10 m/s
    rig.sched.schedule_in(100_ms, move);
  };
  rig.sched.schedule_in(100_ms, move);
  rig.sched.run_until(6_s);

  ASSERT_TRUE(last_lf_cam.has_value());
  const auto& points = last_lf_cam->low_frequency->path_history.points;
  ASSERT_GE(points.size(), 3u);
  // Northbound travel: every recorded delta points south (negative
  // latitude step, negligible longitude step).
  for (std::size_t i = 1; i < points.size(); ++i) {  // skip the fresh anchor point
    EXPECT_LT(points[i].delta_latitude, 0);
    EXPECT_NEAR(points[i].delta_longitude, 0, 3);
  }
}

TEST(CaService, StopHaltsGeneration) {
  Rig rig;
  auto& a = rig.add_station(1, {0, 0});
  rig.add_station(2, {30, 0});
  a.ca->start();
  rig.sched.run_until(2_s);
  const auto sent = a.ca->stats().cams_sent;
  a.ca->stop();
  rig.sched.run_until(5_s);
  EXPECT_EQ(a.ca->stats().cams_sent, sent);
}

TEST(DenService, TriggerDeliversToReceiverInArea) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  auto& b = rig.add_station(42, {20, 0});
  int received = 0;
  bool was_update = true;
  b.den->set_denm_callback([&](const Denm& denm, const GnDeliveryMeta&, bool update) {
    ++received;
    was_update = update;
    EXPECT_EQ(denm.management.action_id.originating_station, 900u);
    EXPECT_EQ(denm.situation->event_type.cause(), Cause::CollisionRisk);
  });
  const ActionId id = a.den->trigger(basic_request({10, 0}));
  rig.sched.run_until(1_s);
  EXPECT_EQ(received, 1);
  EXPECT_FALSE(was_update);
  EXPECT_TRUE(a.den->owns(id));
  EXPECT_TRUE(b.den->received_state(id).has_value());
  // The DENM also landed in the receiver's LDM.
  EXPECT_EQ(b.ldm->events().size(), 1u);
}

TEST(DenService, RepetitionIsNotRedeliveredToApplication) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  auto& b = rig.add_station(42, {20, 0});
  int received = 0;
  b.den->set_denm_callback([&](const Denm&, const GnDeliveryMeta&, bool) { ++received; });
  DenmRequest r = basic_request({10, 0});
  r.repetition_interval = 100_ms;
  r.repetition_duration = 1_s;
  a.den->trigger(r);
  rig.sched.run_until(3_s);
  // ~10 transmissions on air, but the application sees the event once.
  EXPECT_GE(a.den->stats().repetitions, 8u);
  EXPECT_EQ(received, 1);
  EXPECT_GE(b.den->stats().duplicates_discarded, 8u);
}

TEST(DenService, UpdateReachesApplicationAsUpdate) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  auto& b = rig.add_station(42, {20, 0});
  std::vector<bool> updates;
  b.den->set_denm_callback(
      [&](const Denm&, const GnDeliveryMeta&, bool update) { updates.push_back(update); });
  const ActionId id = a.den->trigger(basic_request({10, 0}));
  rig.sched.run_until(500_ms);
  DenmRequest changed = basic_request({10, 0});
  changed.event_type = EventType::of(Cause::DangerousSituation, 5);
  a.den->update(id, changed);
  rig.sched.run_until(1_s);
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_FALSE(updates[0]);
  EXPECT_TRUE(updates[1]);
}

TEST(DenService, TerminationCancelsEventAndClearsLdm) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  auto& b = rig.add_station(42, {20, 0});
  int terminations = 0;
  b.den->set_denm_callback([&](const Denm& denm, const GnDeliveryMeta&, bool) {
    if (denm.is_termination()) ++terminations;
  });
  const ActionId id = a.den->trigger(basic_request({10, 0}));
  rig.sched.run_until(500_ms);
  EXPECT_EQ(b.ldm->events().size(), 1u);
  a.den->terminate(id);
  rig.sched.run_until(1_s);
  EXPECT_EQ(terminations, 1);
  EXPECT_TRUE(b.ldm->events().empty());
  EXPECT_FALSE(a.den->owns(id));
  const auto state = b.den->received_state(id);
  ASSERT_TRUE(state.has_value());
  EXPECT_TRUE(state->terminated);
}

TEST(DenService, NegationByAnotherStationClearsTheEvent) {
  Rig rig;
  auto& originator = rig.add_station(900, {0, 0});
  auto& infra = rig.add_station(42, {20, 0});
  auto& bystander = rig.add_station(7, {40, 0});
  int bystander_terminations = 0;
  bystander.den->set_denm_callback([&](const Denm& denm, const GnDeliveryMeta&, bool) {
    if (denm.is_termination()) {
      ++bystander_terminations;
      EXPECT_EQ(denm.management.termination, Termination::IsNegation);
      // The negation carries the original ActionID but the negating
      // station's identity in the header.
      EXPECT_EQ(denm.management.action_id.originating_station, 900u);
      EXPECT_EQ(denm.header.station_id, 42u);
    }
  });
  DenmRequest r = basic_request({10, 0});
  const ActionId id = originator.den->trigger(r);
  rig.sched.run_until(500_ms);
  EXPECT_EQ(bystander.ldm->events().size(), 1u);

  EXPECT_TRUE(infra.den->negate(id));
  rig.sched.run_until(1_s);
  EXPECT_EQ(bystander_terminations, 1);
  EXPECT_TRUE(bystander.ldm->events().empty());
  // Unknown ActionID cannot be negated; double negation is refused.
  EXPECT_FALSE(infra.den->negate(ActionId{900, 999}));
  EXPECT_FALSE(infra.den->negate(id));
}

TEST(Ldm, SubscribersSeeEveryKindOfUpdate) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  std::vector<LdmUpdateKind> kinds;
  const auto sub = ldm.subscribe([&](const LdmUpdate& u) { kinds.push_back(u.kind); });

  Cam cam;
  cam.header.station_id = 42;
  ldm.update_from_cam(cam);
  Denm denm;
  denm.management.action_id = {900, 1};
  denm.management.validity_duration_s = 60;
  ldm.update_from_denm(denm);
  ldm.update_perceived_object({.object_id = 1, .classification = "stop sign"});
  Denm termination = denm;
  termination.management.termination = Termination::IsCancellation;
  ldm.update_from_denm(termination);

  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], LdmUpdateKind::Vehicle);
  EXPECT_EQ(kinds[1], LdmUpdateKind::Event);
  EXPECT_EQ(kinds[2], LdmUpdateKind::PerceivedObject);
  EXPECT_EQ(kinds[3], LdmUpdateKind::EventRemoved);

  ldm.unsubscribe(sub);
  ldm.update_from_cam(cam);
  EXPECT_EQ(kinds.size(), 4u);
}

TEST(DenService, UpdateOfUnknownActionThrows) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  EXPECT_THROW(a.den->update(ActionId{900, 999}, basic_request({0, 0})), std::invalid_argument);
  EXPECT_THROW(a.den->terminate(ActionId{900, 999}), std::invalid_argument);
}

TEST(DenService, SequentialTriggersGetDistinctActionIds) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  const ActionId id1 = a.den->trigger(basic_request({0, 0}));
  const ActionId id2 = a.den->trigger(basic_request({5, 0}));
  EXPECT_NE(id1.sequence_number, id2.sequence_number);
  EXPECT_EQ(id1.originating_station, id2.originating_station);
}

TEST(DenService, KeepAliveForwardingKeepsEventOnAir) {
  Rig rig;
  auto& originator = rig.add_station(900, {0, 0});
  // b has KAF enabled; rebuild its DEN service with the config.
  auto& b = rig.add_station(42, {20, 0});
  DenConfig kaf_config;
  kaf_config.enable_kaf = true;
  kaf_config.kaf_default_interval = 300_ms;
  b.den = std::make_unique<DenBasicService>(rig.sched, *b.router, 42, nullptr, b.ldm.get(),
                                            kaf_config);
  // c joins late: it only hears the event thanks to b's keep-alive copies.
  auto& c = rig.add_station(7, {40, 0});
  int c_received = 0;
  c.den->set_denm_callback([&](const Denm&, const GnDeliveryMeta&, bool) { ++c_received; });

  // One single original transmission, no repetition by the originator, and
  // long validity.
  DenmRequest r = basic_request({10, 0});
  r.validity = 30_s;
  originator.den->trigger(r);
  rig.sched.run_until(3_s);

  EXPECT_GE(b.den->stats().kaf_retransmissions, 3u);
  EXPECT_GE(c_received, 1);
}

TEST(DenService, KafStopsAfterTermination) {
  Rig rig;
  auto& originator = rig.add_station(900, {0, 0});
  auto& b = rig.add_station(42, {20, 0});
  DenConfig kaf_config;
  kaf_config.enable_kaf = true;
  kaf_config.kaf_default_interval = 200_ms;
  b.den = std::make_unique<DenBasicService>(rig.sched, *b.router, 42, nullptr, b.ldm.get(),
                                            kaf_config);
  DenmRequest r = basic_request({10, 0});
  r.validity = 30_s;
  const ActionId id = originator.den->trigger(r);
  rig.sched.run_until(1_s);
  const auto before = b.den->stats().kaf_retransmissions;
  EXPECT_GE(before, 1u);
  originator.den->terminate(id);
  rig.sched.run_until(1500_ms);
  const auto at_termination = b.den->stats().kaf_retransmissions;
  rig.sched.run_until(4_s);
  EXPECT_EQ(b.den->stats().kaf_retransmissions, at_termination);
}

TEST(DenService, KafSilentOnceOutsideRelevanceArea) {
  Rig rig;
  auto& originator = rig.add_station(900, {0, 0});
  auto& roamer = rig.add_station(42, {20, 0});
  DenConfig kaf_config;
  kaf_config.enable_kaf = true;
  kaf_config.kaf_default_interval = 200_ms;
  roamer.den = std::make_unique<DenBasicService>(rig.sched, *roamer.router, 42, nullptr,
                                                 roamer.ldm.get(), kaf_config);
  DenmRequest r = basic_request({10, 0});
  r.destination_area = geo::GeoArea::circle({10, 0}, 60.0);
  r.validity = 30_s;
  originator.den->trigger(r);
  rig.sched.run_until(1_s);
  EXPECT_GE(roamer.den->stats().kaf_retransmissions, 1u);

  // The roamer leaves the relevance area: KAF must fall silent (the
  // position gate of EN 302 637-3 §8.2.2).
  roamer.data.position = {500, 0};
  rig.sched.run_until(1300_ms);  // let one more timer fire with the new position
  const auto after_leaving = roamer.den->stats().kaf_retransmissions;
  rig.sched.run_until(4_s);
  EXPECT_EQ(roamer.den->stats().kaf_retransmissions, after_leaving);
}

TEST(Ldm, EntriesExpireOverTime) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  ldm.set_vehicle_entry_lifetime(500_ms);

  Cam cam;
  cam.header.station_id = 7;
  cam.basic.reference_position.latitude = geo::to_its_tenth_microdegree(41.1780);
  cam.basic.reference_position.longitude = geo::to_its_tenth_microdegree(-8.6080);
  ldm.update_from_cam(cam);
  EXPECT_TRUE(ldm.vehicle(7).has_value());
  sched.run_until(1_s);
  EXPECT_FALSE(ldm.vehicle(7).has_value());
  EXPECT_TRUE(ldm.vehicles().empty());
}

TEST(Ldm, PerceivedObjectsStoredAndQueried) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  PerceivedObject obj;
  obj.object_id = 3;
  obj.classification = "stop sign";
  obj.position = {1, 2};
  obj.confidence = 0.9;
  ldm.update_perceived_object(obj);
  const auto got = ldm.perceived_object(3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->classification, "stop sign");
  EXPECT_EQ(ldm.perceived_objects().size(), 1u);
  EXPECT_FALSE(ldm.perceived_object(4).has_value());
}

TEST(Ldm, PerceivedObjectExpiryWindowIsHalfOpen) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  ldm.set_perceived_object_lifetime(500_ms);
  ldm.update_perceived_object({.object_id = 3, .classification = "person"});
  sched.run_until(499_ms);
  EXPECT_TRUE(ldm.perceived_object(3).has_value());
  EXPECT_EQ(ldm.perceived_objects().size(), 1u);
  // Exactly at the lifetime boundary the object is already stale: the
  // window is [observed, observed + lifetime), matching expiry.
  sched.run_until(500_ms);
  EXPECT_FALSE(ldm.perceived_object(3).has_value());
  EXPECT_TRUE(ldm.perceived_objects().empty());
}

TEST(Ldm, PerceivedObjectRefreshExtendsExpiry) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  ldm.set_perceived_object_lifetime(500_ms);
  ldm.update_perceived_object({.object_id = 3, .classification = "person"});
  sched.run_until(400_ms);
  // Re-observing the object must restart its expiry clock, not let the
  // original insertion time keep ticking underneath.
  ldm.update_perceived_object({.object_id = 3, .classification = "person"});
  sched.run_until(800_ms);
  EXPECT_TRUE(ldm.perceived_object(3).has_value());
  sched.run_until(900_ms);
  EXPECT_FALSE(ldm.perceived_object(3).has_value());
  ldm.garbage_collect();
  EXPECT_EQ(ldm.perceived_objects_expired(), 1u);
}

TEST(Ldm, PerceivedObjectMeasuredDefaultsToUpdateTime) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  sched.run_until(200_ms);
  ldm.update_perceived_object({.object_id = 1, .classification = "person"});
  EXPECT_EQ(ldm.perceived_object(1)->measured, 200_ms);
  // An explicit (older) measurement timestamp survives the update.
  PerceivedObject remote;
  remote.object_id = 2;
  remote.classification = "bicycle";
  remote.measured = 50_ms;
  remote.source_station = 900;
  ldm.update_perceived_object(remote);
  EXPECT_EQ(ldm.perceived_object(2)->measured, 50_ms);
  EXPECT_EQ(ldm.perceived_object(2)->source_station, 900u);
  EXPECT_EQ(ldm.perceived_object(1)->source_station, 0u);  // local sensing
}

TEST(Ldm, AreaQueriesFilterGeometrically) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  for (StationId id = 1; id <= 3; ++id) {
    Cam cam;
    cam.header.station_id = id;
    const geo::GeoPosition gp = frame.to_geo({static_cast<double>(id) * 50.0, 0.0});
    cam.basic.reference_position.latitude = geo::to_its_tenth_microdegree(gp.latitude_deg);
    cam.basic.reference_position.longitude = geo::to_its_tenth_microdegree(gp.longitude_deg);
    ldm.update_from_cam(cam);
  }
  const auto near = ldm.vehicles_in(geo::GeoArea::circle({50, 0}, 60.0));
  ASSERT_EQ(near.size(), 2u);  // stations at 50 m and 100 m
  EXPECT_EQ(ldm.vehicles().size(), 3u);
}

TEST(Ldm, DumpRendersAllEntryKinds) {
  sim::Scheduler sched;
  geo::LocalFrame frame{{41.1780, -8.6080}};
  Ldm ldm{sched, frame};
  Cam cam;
  cam.header.station_id = 42;
  cam.basic.reference_position.latitude = geo::to_its_tenth_microdegree(41.1780);
  cam.basic.reference_position.longitude = geo::to_its_tenth_microdegree(-8.6080);
  ldm.update_from_cam(cam);
  Denm denm;
  denm.header.station_id = 900;
  denm.management.action_id = {900, 1};
  denm.management.validity_duration_s = 60;
  denm.situation = SituationContainer{.information_quality = 5,
                                      .event_type = EventType::of(Cause::CollisionRisk, 2),
                                      .linked_cause = {}};
  ldm.update_from_denm(denm);
  ldm.update_perceived_object({.object_id = 1, .classification = "stop sign"});
  const std::string dump = ldm.dump();
  EXPECT_NE(dump.find("station 42"), std::string::npos);
  EXPECT_NE(dump.find("Collision risk"), std::string::npos);
  EXPECT_NE(dump.find("stop sign"), std::string::npos);
}

TEST(DenService, UpdateExtendsReceivedExpiryAndKafSurvives) {
  Rig rig;
  auto& originator = rig.add_station(900, {0, 0});
  auto& b = rig.add_station(42, {20, 0});
  DenConfig kaf_config;
  kaf_config.enable_kaf = true;
  kaf_config.kaf_default_interval = 300_ms;
  b.den = std::make_unique<DenBasicService>(rig.sched, *b.router, 42, nullptr, b.ldm.get(),
                                            kaf_config);

  DenmRequest r = basic_request({10, 0});
  r.validity = 2_s;
  const ActionId id = originator.den->trigger(r);
  rig.sched.run_until(1_s);

  // Update with double the validity: the receiver's expiry must move out to
  // the update's window, not stay pinned at the original 2 s deadline.
  DenmRequest update = basic_request({10, 0});
  update.validity = 4_s;
  originator.den->update(id, update);
  rig.sched.run_until(1100_ms);

  const auto st = b.den->received_state(id);
  ASSERT_TRUE(st.has_value());
  EXPECT_GT(st->expires, 4_s);

  // The keep-alive chain must survive past the ORIGINAL deadline and keep
  // forwarding until the extended one.
  rig.sched.run_until(2500_ms);
  const auto past_original = b.den->stats().kaf_retransmissions;
  EXPECT_GE(past_original, 1u);
  rig.sched.run_until(4_s);
  EXPECT_GT(b.den->stats().kaf_retransmissions, past_original);
}

TEST(DenService, OriginatedEventExpiresAndStopsRepetition) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  rig.add_station(42, {20, 0});
  DenmRequest r = basic_request({10, 0});
  r.validity = 1_s;
  r.repetition_interval = 100_ms;
  r.repetition_duration = 10_s;  // repetition window deliberately > validity
  const ActionId id = a.den->trigger(r);
  rig.sched.run_until(5_s);
  // The 1 s validity caps the repetition chain, not the 10 s window: ~9-10
  // repetitions, never the ~49 a validity-blind repeater would emit.
  EXPECT_GE(a.den->stats().repetitions, 8u);
  EXPECT_LE(a.den->stats().repetitions, 10u);
  // And the originated state itself is gone once the validity elapsed.
  EXPECT_FALSE(a.den->owns(id));
}

TEST(DenService, BuildDenmClampsValidityAndRoundsHeading) {
  Rig rig;
  auto& a = rig.add_station(900, {0, 0});
  std::vector<Denm> sent;
  a.den->set_transmit_hook([&](const Denm& d) { sent.push_back(d); });

  // validityDuration is 0..86400 s in EN 302 637-3: oversized requests clamp
  // instead of wrapping through the PER constraint.
  DenmRequest r = basic_request({10, 0});
  r.validity = sim::SimTime::seconds(100'000);
  r.event_heading_rad = 0.05 * M_PI / 180.0;  // 0.05 deg
  a.den->trigger(r);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].management.validity_duration_s, 86400u);
  // 0.05 deg rounds UP to 1 deci-degree; truncation used to floor it to 0.
  ASSERT_TRUE(sent[0].location.has_value());
  ASSERT_TRUE(sent[0].location->event_position_heading.has_value());
  EXPECT_EQ(sent[0].location->event_position_heading->value_01deg, 1);

  // Just below 360 deg rounds up to 3600, which must wrap to 0.
  DenmRequest r2 = basic_request({10, 0});
  r2.event_heading_rad = 359.96 * M_PI / 180.0;
  a.den->trigger(r2);
  ASSERT_EQ(sent.size(), 2u);
  ASSERT_TRUE(sent[1].location->event_position_heading.has_value());
  EXPECT_EQ(sent[1].location->event_position_heading->value_01deg, 0);

  // Sub-second validity still announces at least 1 s.
  DenmRequest r3 = basic_request({10, 0});
  r3.validity = sim::SimTime::milliseconds(200);
  a.den->trigger(r3);
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_EQ(sent[2].management.validity_duration_s, 1u);
}

}  // namespace
}  // namespace rst::its
