// Failure injection: the safety chain under degraded subsystems — lossy
// HTTP LAN, shadowed radio channel, unreliable object detection. The
// testbed must either still stop the vehicle (graceful degradation via
// polling retries / DENM repetition / the min-range backstop) or fail in
// the explicitly expected way.

#include <gtest/gtest.h>

#include "rst/core/testbed.hpp"

namespace rst::core {
namespace {

using namespace rst::sim::literals;

TEST(FailureInjection, LossyHttpLanDelaysButDoesNotBreakTheStop) {
  TestbedConfig config;
  config.seed = 91;
  config.lan.loss_probability = 0.3;  // 30% of HTTP requests vanish
  config.lan.loss_timeout = 30_ms;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  // The polling loop retries; the next successful poll fetches the DENM.
  EXPECT_LT(r.meas_obu_to_actuator_ms, 300.0);
  EXPECT_GT(scenario.message_handler().stats().polls, 10u);
}

TEST(FailureInjection, FullyDeadLanMeansNoStop) {
  TestbedConfig config;
  config.seed = 92;
  config.lan.loss_probability = 1.0;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(sim::SimTime::seconds(12));
  EXPECT_FALSE(r.stopped_by_denm);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(scenario.dynamics().power_cut());
}

TEST(FailureInjection, HeavyShadowingSurvivesWithDenmRepetition) {
  TestbedConfig config;
  config.seed = 93;
  config.shadowing_sigma_db = 14.0;  // deep fades possible on any frame
  config.hazard.denm_repetition = 40_ms;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(sim::SimTime::seconds(20));
  ASSERT_TRUE(r.stopped_by_denm);
  // Possibly a repetition was the copy that made it; still under a second.
  EXPECT_LT((r.t_power_cut - r.t_detection).to_milliseconds(), 1000.0);
}

TEST(FailureInjection, RadioBlockedByWallFailsWithoutRepetition) {
  TestbedConfig config;
  config.seed = 94;
  // A shielding obstruction right in front of the RSU: it blocks the
  // radio path to the approach road but leaves the camera's optical
  // corridor (along x = 0) clear.
  config.walls.push_back({.a = {0.25, 7.9}, .b = {5.0, 7.9}, .obstruction_loss_db = 80.0});
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(sim::SimTime::seconds(12));
  EXPECT_FALSE(r.stopped_by_denm);
  // The DENM was sent but never received.
  EXPECT_GE(scenario.rsu().den().stats().denms_sent, 1u);
  EXPECT_EQ(scenario.obu().den().stats().denms_received, 0u);
}

TEST(FailureInjection, FlakyDetectorStillStopsViaBackstop) {
  TestbedConfig config;
  config.seed = 95;
  // Degrade the stop-sign detector to coin-flip reliability.
  config.yolo.stop_sign.detection_probability = 0.5;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(sim::SimTime::seconds(20));
  ASSERT_TRUE(r.stopped_by_denm);
  // Detection may be late (missed frames), but the chain completes and the
  // car stops before reaching the camera.
  EXPECT_GT(r.stop_distance_to_camera_m, 0.0);
}

TEST(FailureInjection, CameraDropoutDegradesLineFollowingGracefully) {
  TestbedConfig config;
  config.seed = 96;
  config.line_sensor.dropout_probability = 0.5;  // half the Hough frames empty
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(sim::SimTime::seconds(25));
  // The follower holds course between detections; the trial still succeeds.
  ASSERT_TRUE(r.stopped_by_denm);
  EXPECT_LT(r.meas_total_ms, 100.0);
}

TEST(FailureInjection, SlowNtpSyncInflatesMeasuredIntervalsOnly) {
  TestbedConfig config;
  config.seed = 97;
  // Badly disciplined clocks: visible boot offsets and large residual sync
  // error, with syncs actually occurring during the run.
  const sim::SimTime big_sigma = 5_ms;
  for (auto* ntp : {&config.obu.ntp, &config.rsu.ntp, &config.edge_ntp, &config.jetson_ntp}) {
    ntp->sync_error_sigma = big_sigma;
    ntp->sync_interval = 2_s;
  }
  config.edge_ntp.initial_offset = 4_ms;
  config.rsu.ntp.initial_offset = -3_ms;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  // True (simulation-clock) chain is unaffected...
  EXPECT_LT((r.t_power_cut - r.t_detection).to_milliseconds(), 100.0);
  // ...but the NTP-measured intervals now disagree with truth noticeably.
  const double truth = (r.t_rsu_send - r.t_detection).to_milliseconds();
  EXPECT_GT(std::abs(r.meas_detection_to_rsu_ms - truth), 0.5);
}

TEST(FailureInjection, StoppedTrialIsStableUnderContinuedTraffic) {
  TestbedConfig config;
  config.seed = 98;
  config.hazard.denm_repetition = 100_ms;  // DENMs keep arriving after the stop
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  const geo::Vec2 resting = scenario.dynamics().position();
  scenario.scheduler().run_until(scenario.scheduler().now() + 5_s);
  EXPECT_NEAR(geo::distance(resting, scenario.dynamics().position()), 0.0, 1e-9);
  // Repetitions were deduplicated, not re-delivered.
  EXPECT_GE(scenario.obu().den().stats().duplicates_discarded, 1u);
}

}  // namespace
}  // namespace rst::core
