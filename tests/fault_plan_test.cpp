// FaultPlan unit and property tests: clause parsing/formatting round trips
// (including through the config_io registry), window semantics ([start,
// end), worst-of composition, wildcard targets), typed trace spans for
// every activation/recovery, stream determinism, and the HttpLan poll-loop
// retry cadence regression under 100% loss.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "rst/core/config_io.hpp"
#include "rst/core/testbed.hpp"
#include "rst/sim/fault_plan.hpp"

namespace rst::sim {
namespace {

using namespace rst::sim::literals;

TEST(FaultPlan, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    const auto name = fault_kind_name(kind);
    EXPECT_FALSE(name.empty());
    const auto back = fault_kind_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fault_kind_from_name("warp-core-breach").has_value());
}

TEST(FaultPlan, ParsesClauses) {
  const FaultClause c = parse_fault_clause("radio-blackout:medium:100:250:1");
  EXPECT_EQ(c.kind, FaultKind::RadioBlackout);
  EXPECT_EQ(c.target, "medium");
  EXPECT_EQ(c.start, 100_ms);
  EXPECT_EQ(c.end, 250_ms);
  EXPECT_DOUBLE_EQ(c.severity, 1.0);

  // "*" and an empty field both mean any target of the kind.
  EXPECT_EQ(parse_fault_clause("http-loss:*:0:1000:0.3").target, "");
  EXPECT_EQ(parse_fault_clause("http-loss::0:1000:0.3").target, "");
}

TEST(FaultPlan, RejectsMalformedClauses) {
  EXPECT_THROW((void)parse_fault_clause("warp-core-breach:*:0:1:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_clause("http-loss:*:0:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_clause("http-loss:*:0:1:1:extra"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_clause("http-loss:*:500:100:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_clause("http-loss:*:zero:100:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_clause(""), std::invalid_argument);
}

FaultClause random_clause(std::mt19937& gen) {
  static const std::vector<std::string> kTargets = {"", "medium", "lan", "obu", "yolo"};
  std::uniform_real_distribution<double> ms{0.0, 60000.0};
  std::uniform_real_distribution<double> sev{0.0, 400.0};
  FaultClause c;
  c.kind = static_cast<FaultKind>(gen() % kFaultKindCount);
  c.target = kTargets[gen() % kTargets.size()];
  c.start = SimTime::from_milliseconds(ms(gen));
  c.end = c.start + SimTime::from_milliseconds(ms(gen));
  c.severity = sev(gen);
  return c;
}

TEST(FaultPlan, FormatParseRoundTripsRandomizedClauses) {
  std::mt19937 gen{12345};
  for (int i = 0; i < 300; ++i) {
    const FaultClause c = random_clause(gen);
    const std::string text = format_fault_clause(c);
    const FaultClause back = parse_fault_clause(text);
    EXPECT_EQ(back, c) << text;
  }
}

TEST(FaultPlan, PlanRoundTripsThroughConfigIo) {
  std::mt19937 gen{67890};
  for (int round = 0; round < 25; ++round) {
    FaultPlan plan;
    const std::size_t n = 1 + gen() % 6;
    for (std::size_t i = 0; i < n; ++i) plan.clauses.push_back(random_clause(gen));

    core::TestbedConfig config;
    const auto applied = core::apply_config_overrides(config, format_fault_plan(plan));
    EXPECT_EQ(applied, n);
    EXPECT_EQ(config.fault_plan, plan);
  }
}

TEST(FaultPlan, WatchdogKnobsParseFromConfig) {
  core::TestbedConfig config;
  core::apply_config_overrides(config,
                               "watchdog = true\n"
                               "watchdog_timeout_ms = 250\n"
                               "failsafe_speed_mps = 0.4\n"
                               "hazard_min_confidence = 0.5\n"
                               "hazard_require_known_road_user = true\n"
                               "fault = node-down:obu:0:3000:1\n");
  EXPECT_TRUE(config.message_handler.watchdog);
  EXPECT_EQ(config.message_handler.watchdog_timeout, 250_ms);
  EXPECT_DOUBLE_EQ(config.planner.failsafe_speed_mps, 0.4);
  EXPECT_DOUBLE_EQ(config.hazard.min_confidence, 0.5);
  EXPECT_TRUE(config.hazard.require_known_road_user);
  ASSERT_EQ(config.fault_plan.clauses.size(), 1u);
  EXPECT_EQ(config.fault_plan.clauses[0].kind, FaultKind::NodeDown);
}

TEST(FaultPlan, WindowIsHalfOpen) {
  Scheduler sched;
  RandomStream rng{1, "fault_test"};
  FaultPlan plan;
  plan.clauses.push_back({FaultKind::RadioBlackout, "medium", 10_ms, 20_ms, 1.0});
  FaultInjector inj{sched, rng.child("faults"), plan};

  EXPECT_FALSE(inj.active(FaultKind::RadioBlackout, "medium"));
  sched.run_until(10_ms - SimTime::microseconds(1));
  EXPECT_FALSE(inj.active(FaultKind::RadioBlackout, "medium"));
  sched.run_until(10_ms);  // start is inclusive
  EXPECT_TRUE(inj.active(FaultKind::RadioBlackout, "medium"));
  sched.run_until(20_ms - SimTime::microseconds(1));
  EXPECT_TRUE(inj.active(FaultKind::RadioBlackout, "medium"));
  sched.run_until(20_ms);  // end is exclusive
  EXPECT_FALSE(inj.active(FaultKind::RadioBlackout, "medium"));
}

TEST(FaultPlan, WindowsNeverFireOutsideTheirRangeProperty) {
  std::mt19937 gen{424242};
  static const std::vector<std::string> kQueryTargets = {"medium", "lan", "obu", "yolo", "rsu"};
  for (int round = 0; round < 20; ++round) {
    Scheduler sched;
    RandomStream rng{7, "prop"};
    FaultPlan plan;
    const std::size_t n = 1 + gen() % 5;
    for (std::size_t i = 0; i < n; ++i) plan.clauses.push_back(random_clause(gen));
    FaultInjector inj{sched, rng.child("faults"), plan};

    // Probe at random instants plus every clause boundary, in time order.
    std::vector<SimTime> probes;
    std::uniform_real_distribution<double> ms{0.0, 130000.0};
    for (int i = 0; i < 40; ++i) probes.push_back(SimTime::from_milliseconds(ms(gen)));
    for (const auto& c : plan.clauses) {
      probes.push_back(c.start);
      probes.push_back(c.end);
    }
    std::sort(probes.begin(), probes.end());

    for (const SimTime t : probes) {
      sched.run_until(t);
      for (std::size_t k = 0; k < kFaultKindCount; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        for (const auto& target : kQueryTargets) {
          bool expect_active = false;
          double expect_severity = 0.0;
          for (const auto& c : plan.clauses) {
            if (c.kind != kind) continue;
            if (!c.target.empty() && c.target != target) continue;
            if (t < c.start || t >= c.end) continue;
            expect_active = true;
            expect_severity = std::max(expect_severity, c.severity);
          }
          EXPECT_EQ(inj.active(kind, target), expect_active);
          EXPECT_DOUBLE_EQ(inj.severity(kind, target), expect_severity);
        }
      }
    }
  }
}

TEST(FaultPlan, OverlappingClausesComposeWorstOf) {
  Scheduler sched;
  RandomStream rng{3, "worst"};
  FaultPlan plan;
  plan.clauses.push_back({FaultKind::HttpLoss, "lan", 0_ms, 100_ms, 0.3});
  plan.clauses.push_back({FaultKind::HttpLoss, "lan", 50_ms, 200_ms, 0.7});
  plan.clauses.push_back({FaultKind::RadioAttenuation, "medium", 0_ms, 100_ms, 20.0});
  plan.clauses.push_back({FaultKind::RadioBlackout, "medium", 20_ms, 60_ms, 1.0});
  FaultInjector inj{sched, rng.child("faults"), plan};

  sched.run_until(10_ms);
  EXPECT_DOUBLE_EQ(inj.severity(FaultKind::HttpLoss, "lan"), 0.3);
  EXPECT_DOUBLE_EQ(inj.radio_attenuation_db("medium"), 20.0);
  sched.run_until(30_ms);
  // A blackout dominates any attenuation window it overlaps.
  EXPECT_DOUBLE_EQ(inj.radio_attenuation_db("medium"), FaultInjector::kRadioBlackoutDb);
  sched.run_until(75_ms);
  EXPECT_DOUBLE_EQ(inj.severity(FaultKind::HttpLoss, "lan"), 0.7);
  EXPECT_DOUBLE_EQ(inj.radio_attenuation_db("medium"), 20.0);
  sched.run_until(150_ms);
  EXPECT_DOUBLE_EQ(inj.severity(FaultKind::HttpLoss, "lan"), 0.7);
  EXPECT_DOUBLE_EQ(inj.radio_attenuation_db("medium"), 0.0);
}

TEST(FaultPlan, WildcardTargetMatchesEveryInjectionPoint) {
  Scheduler sched;
  RandomStream rng{4, "wild"};
  FaultPlan plan;
  plan.clauses.push_back({FaultKind::NodeDown, "", 0_ms, 100_ms, 1.0});
  plan.clauses.push_back({FaultKind::HttpStall, "edge", 0_ms, 100_ms, 15.0});
  FaultInjector inj{sched, rng.child("faults"), plan};

  sched.run_until(10_ms);
  EXPECT_TRUE(inj.active(FaultKind::NodeDown, "obu"));
  EXPECT_TRUE(inj.active(FaultKind::NodeDown, "rsu"));
  EXPECT_TRUE(inj.active(FaultKind::HttpStall, "edge"));
  EXPECT_FALSE(inj.active(FaultKind::HttpStall, "lan"));
}

TEST(FaultPlan, EveryActivationAndRecoveryEmitsATypedSpan) {
  Scheduler sched;
  Trace trace;
  RandomStream rng{5, "spans"};
  FaultPlan plan;
  plan.clauses.push_back({FaultKind::RadioBlackout, "medium", 10_ms, 20_ms, 1.0});
  plan.clauses.push_back({FaultKind::HttpLoss, "lan", 15_ms, 40_ms, 0.5});
  FaultInjector inj{sched, rng.child("faults"), plan, &trace};

  sched.run_until(100_ms);
  EXPECT_EQ(inj.stats().activations, 2u);
  EXPECT_EQ(inj.stats().recoveries, 2u);

  const auto events = trace.find_all_events(Stage::FaultWindow);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < plan.clauses.size(); ++i) {
    const auto& clause = plan.clauses[i];
    int begins = 0;
    int ends = 0;
    for (const auto* ev : events) {
      if (ev->a != i) continue;
      EXPECT_EQ(static_cast<FaultKind>(ev->detail), clause.kind);
      EXPECT_DOUBLE_EQ(ev->value, clause.severity);
      if (ev->phase == Phase::Begin) {
        EXPECT_EQ(ev->when, clause.start);
        ++begins;
      } else {
        EXPECT_EQ(ev->phase, Phase::End);
        EXPECT_EQ(ev->when, clause.end);
        ++ends;
      }
    }
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(ends, 1);
  }
  // The spans render through the legacy string view too.
  EXPECT_NE(trace.find("fault_injector", "radio-blackout"), nullptr);
}

TEST(FaultPlan, StreamsAreDeterministicPerKind) {
  const auto draw = [](FaultKind kind) {
    Scheduler sched;
    RandomStream rng{99, "det"};
    FaultPlan plan;
    plan.clauses.push_back({kind, "", 0_ms, 1000_ms, 0.5});
    FaultInjector inj{sched, rng.child("faults"), plan};
    std::vector<bool> draws;
    for (int i = 0; i < 64; ++i) draws.push_back(inj.draw_bernoulli(kind, 0.5));
    return draws;
  };
  // Identical (seed, plan) reproduce the exact draw sequence...
  EXPECT_EQ(draw(FaultKind::YoloMiss), draw(FaultKind::YoloMiss));
  // ...and each kind owns an independent named stream.
  EXPECT_NE(draw(FaultKind::YoloMiss), draw(FaultKind::CameraDrop));
}

// Satellite regression: under 100% HTTP loss the polling loop must keep
// its cadence — every failed poll is followed by a retry at the next poll
// period, with the losses and retries visible in the stats.
TEST(FaultPlan, PollLoopRetryCadenceUnderTotalLoss) {
  core::TestbedConfig config;
  config.seed = 92;
  config.lan.loss_probability = 1.0;
  config.lan.loss_timeout = 30_ms;
  core::TestbedScenario scenario{config};
  const core::TrialResult r = scenario.run_emergency_brake_trial(5_s);
  EXPECT_TRUE(r.timed_out);

  const auto& stats = scenario.message_handler().stats();
  // 5 s at the 50 ms default period: the cadence never degrades.
  const auto expected = static_cast<std::uint64_t>(5000 / 50);
  EXPECT_GE(stats.polls, expected - 2);
  EXPECT_LE(stats.polls, expected + 2);
  // Every completed response failed; every poll after the first failure is
  // a retry; every request the handler issued was lost on the LAN.
  EXPECT_GE(stats.failed_polls, stats.polls - 2);
  EXPECT_GE(stats.retries, stats.polls - 3);
  EXPECT_LE(stats.retries, stats.failed_polls);
  EXPECT_GE(scenario.lan().requests_lost(), stats.polls - 1);
}

}  // namespace
}  // namespace rst::sim
