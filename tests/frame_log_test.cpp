#include <gtest/gtest.h>

#include "rst/core/testbed.hpp"
#include "rst/middleware/frame_log.hpp"

namespace rst::middleware {
namespace {

using namespace rst::sim::literals;

TEST(FrameLog, CapturesTheEmergencyBrakeExchange) {
  core::TestbedConfig config;
  config.seed = 71;
  core::TestbedScenario scenario{config};
  FrameLog log{scenario.scheduler()};
  log.attach(scenario.rsu().radio());  // monitor at the RSU: hears the CAMs
  log.attach(scenario.obu().radio());  // and at the OBU: hears the DENM

  const auto r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);

  const auto summary = log.summarize();
  EXPECT_GT(summary.total, 5u);
  EXPECT_GT(summary.cams, 3u);   // periodic CAMs from the vehicle
  EXPECT_GE(summary.denms, 1u);  // the warning itself
  EXPECT_EQ(summary.total, summary.cams + summary.denms + summary.other);

  // Every captured frame carries a plausible RSSI and a timestamp within
  // the run.
  for (const auto& frame : log.frames()) {
    EXPECT_LT(frame.rssi_dbm, 0.0);
    EXPECT_GT(frame.rssi_dbm, -120.0);
    EXPECT_LE(frame.when, scenario.scheduler().now());
  }
}

TEST(FrameLog, SerializationRoundTrips) {
  core::TestbedConfig config;
  config.seed = 72;
  core::TestbedScenario scenario{config};
  FrameLog log{scenario.scheduler()};
  log.attach(scenario.rsu().radio());  // the RSU hears the vehicle's CAMs
  scenario.start_services();
  scenario.scheduler().run_until(3_s);
  ASSERT_GT(log.frames().size(), 2u);

  const auto bytes = log.serialize();
  const auto parsed = FrameLog::parse(bytes);
  ASSERT_EQ(parsed.size(), log.frames().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].when, log.frames()[i].when);
    EXPECT_EQ(parsed[i].src_mac, log.frames()[i].src_mac);
    EXPECT_EQ(parsed[i].payload, log.frames()[i].payload);
    EXPECT_NEAR(parsed[i].rssi_dbm, log.frames()[i].rssi_dbm, 0.06);  // 0.1 dB quantization
  }
}

TEST(FrameLog, ClearEmptiesTheCapture) {
  sim::Scheduler sched;
  FrameLog log{sched};
  EXPECT_TRUE(log.frames().empty());
  EXPECT_EQ(log.summarize().total, 0u);
  EXPECT_TRUE(FrameLog::parse(log.serialize()).empty());
}

}  // namespace
}  // namespace rst::middleware
