// Robustness fuzzing: the decoders face bytes from a lossy radio and from
// other implementations; arbitrary input must produce either a valid value
// or asn1::DecodeError — never a crash, hang or out-of-bounds access.

#include <gtest/gtest.h>

#include "rst/its/messages/cam.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/middleware/kv.hpp"
#include "rst/sim/random.hpp"

namespace rst {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<std::uint8_t> random_bytes(sim::RandomStream& r, std::size_t max_len) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(max_len))));
  for (auto& b : out) b = static_cast<std::uint8_t>(r.uniform_int(0, 255));
  return out;
}

TEST_P(FuzzSeeds, RandomBytesNeverCrashDecoders) {
  sim::RandomStream r{GetParam(), "fuzz"};
  for (int i = 0; i < 300; ++i) {
    const auto bytes = random_bytes(r, 200);
    try {
      (void)its::Cam::decode(bytes);
    } catch (const asn1::DecodeError&) {
    }
    try {
      (void)its::Denm::decode(bytes);
    } catch (const asn1::DecodeError&) {
    }
    try {
      (void)its::GnPacket::decode(bytes);
    } catch (const asn1::DecodeError&) {
    }
    try {
      (void)its::BtpHeader::parse(bytes);
    } catch (const asn1::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeeds, TruncatedValidMessagesAreRejectedCleanly) {
  sim::RandomStream r{GetParam(), "trunc"};
  its::Denm denm;
  denm.header.station_id = 900;
  denm.management.action_id = {900, 1};
  denm.management.detection_time = its::kSimEpochItsMs;
  denm.management.reference_time = its::kSimEpochItsMs;
  denm.situation = its::SituationContainer{
      .information_quality = 5, .event_type = its::EventType::of(its::Cause::CollisionRisk, 2),
      .linked_cause = {}};
  const auto full = denm.encode();
  for (int i = 0; i < 100; ++i) {
    auto cut = full;
    cut.resize(static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(full.size() - 1))));
    try {
      (void)its::Denm::decode(cut);
      // Some prefixes may decode if the truncation hits padding; fine.
    } catch (const asn1::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeeds, BitflippedMessagesNeverCrash) {
  sim::RandomStream r{GetParam(), "flip"};
  its::GnPacket pkt;
  pkt.type = its::GnPacketType::Gbc;
  pkt.sequence_number = 3;
  pkt.source.address = its::GnAddress::from_station(1);
  pkt.forwarder = pkt.source;
  pkt.destination_area = its::WireGeoArea{411780000, -86080000, 100, 100, 0, 0};
  pkt.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto clean = pkt.encode();
  for (int i = 0; i < 300; ++i) {
    auto corrupt = clean;
    const auto flips = r.uniform_int(1, 8);
    for (long f = 0; f < flips; ++f) {
      const auto byte = static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(corrupt.size() - 1)));
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << r.uniform_int(0, 7));
    }
    try {
      (void)its::GnPacket::decode(corrupt);
    } catch (const asn1::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeeds, KvBodyParserEatsGarbage) {
  sim::RandomStream r{GetParam(), "kv"};
  for (int i = 0; i < 200; ++i) {
    const auto bytes = random_bytes(r, 120);
    const std::string body{bytes.begin(), bytes.end()};
    const auto kv = middleware::KvBody::parse(body);  // must not throw
    (void)kv.get("denm");
    (void)kv.get_int("cause");
    (void)kv.get_double("x");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rst
