// Robustness fuzzing: the decoders face bytes from a lossy radio and from
// other implementations; arbitrary input must produce either a valid value
// or asn1::DecodeError — never a crash, hang or out-of-bounds access.

#include <gtest/gtest.h>

#include "rst/its/messages/cam.hpp"
#include "rst/its/messages/cpm.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/middleware/kv.hpp"
#include "rst/sim/random.hpp"

namespace rst {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<std::uint8_t> random_bytes(sim::RandomStream& r, std::size_t max_len) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(max_len))));
  for (auto& b : out) b = static_cast<std::uint8_t>(r.uniform_int(0, 255));
  return out;
}

TEST_P(FuzzSeeds, RandomBytesNeverCrashDecoders) {
  sim::RandomStream r{GetParam(), "fuzz"};
  for (int i = 0; i < 300; ++i) {
    const auto bytes = random_bytes(r, 200);
    try {
      (void)its::Cam::decode(bytes);
    } catch (const asn1::DecodeError&) {
    }
    try {
      (void)its::Denm::decode(bytes);
    } catch (const asn1::DecodeError&) {
    }
    try {
      (void)its::Cpm::decode(bytes);
    } catch (const asn1::DecodeError&) {
    }
    try {
      (void)its::GnPacket::decode(bytes);
    } catch (const asn1::DecodeError&) {
    }
    try {
      (void)its::BtpHeader::parse(bytes);
    } catch (const asn1::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeeds, TruncatedValidMessagesAreRejectedCleanly) {
  sim::RandomStream r{GetParam(), "trunc"};
  its::Denm denm;
  denm.header.station_id = 900;
  denm.management.action_id = {900, 1};
  denm.management.detection_time = its::kSimEpochItsMs;
  denm.management.reference_time = its::kSimEpochItsMs;
  denm.situation = its::SituationContainer{
      .information_quality = 5, .event_type = its::EventType::of(its::Cause::CollisionRisk, 2),
      .linked_cause = {}};
  const auto full = denm.encode();
  for (int i = 0; i < 100; ++i) {
    auto cut = full;
    cut.resize(static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(full.size() - 1))));
    try {
      (void)its::Denm::decode(cut);
      // Some prefixes may decode if the truncation hits padding; fine.
    } catch (const asn1::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeeds, BitflippedMessagesNeverCrash) {
  sim::RandomStream r{GetParam(), "flip"};
  its::GnPacket pkt;
  pkt.type = its::GnPacketType::Gbc;
  pkt.sequence_number = 3;
  pkt.source.address = its::GnAddress::from_station(1);
  pkt.forwarder = pkt.source;
  pkt.destination_area = its::WireGeoArea{411780000, -86080000, 100, 100, 0, 0};
  pkt.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto clean = pkt.encode();
  for (int i = 0; i < 300; ++i) {
    auto corrupt = clean;
    const auto flips = r.uniform_int(1, 8);
    for (long f = 0; f < flips; ++f) {
      const auto byte = static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(corrupt.size() - 1)));
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << r.uniform_int(0, 7));
    }
    try {
      (void)its::GnPacket::decode(corrupt);
    } catch (const asn1::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeeds, KvBodyParserEatsGarbage) {
  sim::RandomStream r{GetParam(), "kv"};
  for (int i = 0; i < 200; ++i) {
    const auto bytes = random_bytes(r, 120);
    const std::string body{bytes.begin(), bytes.end()};
    const auto kv = middleware::KvBody::parse(body);  // must not throw
    (void)kv.get("denm");
    (void)kv.get_int("cause");
    (void)kv.get_double("x");
  }
}

// --- Chained-stack corpus ---------------------------------------------------
//
// A lossy radio corrupts whole GN PDUs, so robustness must hold through the
// chain a real reception takes: GnPacket::decode -> BtpHeader::parse ->
// Cam/Denm::decode. The corpus is valid CAM-over-BTP-over-GN and
// DENM-over-BTP-over-GN encodings mutated by bit flips and truncation; any
// accepted (fully decodable) mutant must also round-trip stably through its
// own re-encoding.

its::Cam corpus_cam() {
  its::Cam cam;
  cam.header.station_id = 7;
  cam.generation_delta_time = 1234;
  cam.basic.station_type = its::StationType::PassengerCar;
  cam.high_frequency.heading.value_01deg = 900;
  cam.high_frequency.speed.value_cms = 500;
  return cam;
}

its::Denm corpus_denm() {
  its::Denm denm;
  denm.header.station_id = 900;
  denm.management.action_id = {900, 1};
  denm.management.detection_time = its::kSimEpochItsMs;
  denm.management.reference_time = its::kSimEpochItsMs;
  denm.situation = its::SituationContainer{
      .information_quality = 5, .event_type = its::EventType::of(its::Cause::CollisionRisk, 2),
      .linked_cause = {}};
  return denm;
}

its::Cpm corpus_cpm() {
  its::Cpm cpm;
  cpm.header.station_id = 900;
  cpm.generation_delta_time = 777;
  cpm.management.station_type = its::StationType::RoadSideUnit;
  cpm.management.reference_position.latitude = 411780000;
  cpm.management.reference_position.longitude = -86080000;
  cpm.objects.push_back({9, 120, -250, 430, -25, 0, 1, 92});
  cpm.objects.push_back({10, 0, 1200, -90, 0, 120, 7, 77});
  return cpm;
}

std::vector<std::uint8_t> wrap_in_gn(std::vector<std::uint8_t> facilities_pdu,
                                     std::uint16_t port) {
  its::GnPacket pkt;
  pkt.type = its::GnPacketType::Gbc;
  pkt.sequence_number = 9;
  pkt.source.address = its::GnAddress::from_station(7);
  pkt.forwarder = pkt.source;
  pkt.destination_area = its::WireGeoArea{411780000, -86080000, 300, 300, 0, 0};
  pkt.payload = its::BtpHeader{port, 0}.prepend_to(facilities_pdu);
  return pkt.encode();
}

/// Runs the receive chain on `bytes`. Returns the re-encoded bytes when the
/// whole chain accepted the input, an empty vector when any stage rejected
/// it with DecodeError. Anything else (crash, UB, unexpected exception)
/// fails the test from inside.
std::vector<std::uint8_t> chain_decode_reencode(const std::vector<std::uint8_t>& bytes) {
  its::GnPacket pkt;
  try {
    pkt = its::GnPacket::decode(bytes);
  } catch (const asn1::DecodeError&) {
    return {};
  }
  if (pkt.payload.size() < its::BtpHeader::kSize) return {};
  its::BtpHeader::Parsed btp;
  try {
    btp = its::BtpHeader::parse(pkt.payload);
  } catch (const asn1::DecodeError&) {
    return {};
  }
  try {
    if (btp.header.destination_port == its::kBtpPortCam) {
      const auto cam = its::Cam::decode(btp.payload);
      pkt.payload = its::BtpHeader{its::kBtpPortCam, 0}.prepend_to(cam.encode());
    } else if (btp.header.destination_port == its::kBtpPortDenm) {
      const auto denm = its::Denm::decode(btp.payload);
      pkt.payload = its::BtpHeader{its::kBtpPortDenm, 0}.prepend_to(denm.encode());
    } else if (btp.header.destination_port == its::kBtpPortCpm) {
      const auto cpm = its::Cpm::decode(btp.payload);
      pkt.payload = its::BtpHeader{its::kBtpPortCpm, 0}.prepend_to(cpm.encode());
    }
  } catch (const asn1::DecodeError&) {
    return {};
  }
  return pkt.encode();
}

TEST_P(FuzzSeeds, ChainedStackSurvivesBitflipCorpus) {
  sim::RandomStream r{GetParam(), "chain-flip"};
  const std::vector<std::vector<std::uint8_t>> corpus = {
      wrap_in_gn(corpus_cam().encode(), its::kBtpPortCam),
      wrap_in_gn(corpus_denm().encode(), its::kBtpPortDenm),
      wrap_in_gn(corpus_cpm().encode(), its::kBtpPortCpm),
  };
  for (const auto& clean : corpus) {
    // The unmutated encoding must be accepted and must round-trip to a
    // fixed point: decode(encode(decode(x))) == decode(encode(x)).
    const auto once = chain_decode_reencode(clean);
    ASSERT_FALSE(once.empty());
    EXPECT_EQ(chain_decode_reencode(once), once);

    for (int i = 0; i < 300; ++i) {
      auto corrupt = clean;
      const auto flips = r.uniform_int(1, 12);
      for (long f = 0; f < flips; ++f) {
        const auto byte =
            static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(corrupt.size() - 1)));
        corrupt[byte] ^= static_cast<std::uint8_t>(1u << r.uniform_int(0, 7));
      }
      const auto reencoded = chain_decode_reencode(corrupt);
      if (reencoded.empty()) continue;  // cleanly rejected somewhere in the chain
      // Accepted mutants must have reached a stable representation: the
      // re-encoding decodes to exactly the same bytes again.
      EXPECT_EQ(chain_decode_reencode(reencoded), reencoded);
    }
  }
}

TEST_P(FuzzSeeds, ChainedStackSurvivesTruncationCorpus) {
  sim::RandomStream r{GetParam(), "chain-trunc"};
  const std::vector<std::vector<std::uint8_t>> corpus = {
      wrap_in_gn(corpus_cam().encode(), its::kBtpPortCam),
      wrap_in_gn(corpus_denm().encode(), its::kBtpPortDenm),
      wrap_in_gn(corpus_cpm().encode(), its::kBtpPortCpm),
  };
  for (const auto& clean : corpus) {
    // Every prefix length once: deterministic sweep, then a random batch of
    // truncate-then-flip combinations.
    for (std::size_t len = 0; len < clean.size(); ++len) {
      auto cut = clean;
      cut.resize(len);
      const auto reencoded = chain_decode_reencode(cut);
      if (!reencoded.empty()) EXPECT_EQ(chain_decode_reencode(reencoded), reencoded);
    }
    for (int i = 0; i < 100; ++i) {
      auto cut = clean;
      cut.resize(static_cast<std::size_t>(r.uniform_int(1, static_cast<long>(clean.size()))));
      const auto byte =
          static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(cut.size() - 1)));
      cut[byte] ^= static_cast<std::uint8_t>(1u << r.uniform_int(0, 7));
      const auto reencoded = chain_decode_reencode(cut);
      if (!reencoded.empty()) EXPECT_EQ(chain_decode_reencode(reencoded), reencoded);
    }
  }
}

TEST(CpmFuzz, ObjectCountLieIsRejected) {
  // A CPM whose count field promises more perceived-object containers than
  // the buffer carries: the decoder must reject it, not read past the end.
  its::Cpm empty = corpus_cpm();
  empty.objects.clear();
  its::Cpm full = corpus_cpm();
  full.objects.clear();
  for (std::size_t i = 0; i < its::kCpmMaxPerceivedObjects; ++i) {
    full.objects.push_back({static_cast<std::uint16_t>(i), 10, 100, -100, 5, -5, 1, 80});
  }
  auto lying = full.encode();
  // Same bit layout up to the count field, so cutting the full encoding to
  // the empty one's length leaves count = 128 with zero object payload.
  lying.resize(empty.encode().size());
  EXPECT_THROW((void)its::Cpm::decode(lying), asn1::DecodeError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rst
