#include <gtest/gtest.h>

#include <cmath>

#include "rst/geo/geo_area.hpp"
#include "rst/geo/geodesy.hpp"
#include "rst/geo/vec2.hpp"
#include "rst/sim/random.hpp"

namespace rst::geo {
namespace {

TEST(Vec2, BasicAlgebra) {
  const Vec2 a{3, 4};
  const Vec2 b{1, -2};
  EXPECT_EQ(a + b, (Vec2{4, 2}));
  EXPECT_EQ(a - b, (Vec2{2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{6, 8}));
  EXPECT_EQ(a / 2.0, (Vec2{1.5, 2}));
  EXPECT_DOUBLE_EQ(a.dot(b), -5.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -10.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0, 0}));
  const Vec2 n = Vec2{0, 5}.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2, 1};
  const Vec2 r = v.rotated(1.234);
  EXPECT_NEAR(r.norm(), v.norm(), 1e-12);
  // Rotating by 90 degrees CCW maps (1,0) -> (0,1).
  const Vec2 e = Vec2{1, 0}.rotated(M_PI / 2);
  EXPECT_NEAR(e.x, 0.0, 1e-12);
  EXPECT_NEAR(e.y, 1.0, 1e-12);
}

TEST(Heading, ConventionIsClockwiseFromNorth) {
  EXPECT_NEAR(heading_from_vector({0, 1}), 0.0, 1e-12);          // north
  EXPECT_NEAR(heading_from_vector({1, 0}), M_PI / 2, 1e-12);     // east
  EXPECT_NEAR(heading_from_vector({0, -1}), M_PI, 1e-12);        // south
  EXPECT_NEAR(heading_from_vector({-1, 0}), 3 * M_PI / 2, 1e-12);  // west
}

TEST(Heading, RoundTripWithVector) {
  sim::RandomStream r{1, "heading"};
  for (int i = 0; i < 200; ++i) {
    const double h = r.uniform(0.0, 2 * M_PI);
    const Vec2 v = vector_from_heading(h);
    EXPECT_NEAR(heading_from_vector(v), h, 1e-9);
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  }
}

TEST(Geodesy, TenthMicrodegreeConversionRoundTrips) {
  EXPECT_EQ(to_its_tenth_microdegree(41.1780), 411780000);
  EXPECT_NEAR(from_its_tenth_microdegree(411780000), 41.1780, 1e-9);
  EXPECT_EQ(to_its_tenth_microdegree(-8.6080), -86080000);
}

TEST(Geodesy, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  const GeoPosition a{41.0, -8.0};
  const GeoPosition b{42.0, -8.0};
  EXPECT_NEAR(haversine_m(a, b), 111195, 50);
  EXPECT_DOUBLE_EQ(haversine_m(a, a), 0.0);
}

TEST(LocalFrame, RoundTripsAccuratelyOverLabScale) {
  const LocalFrame frame{{41.1780, -8.6080}};
  sim::RandomStream r{2, "frame"};
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{r.uniform(-200, 200), r.uniform(-200, 200)};
    const Vec2 back = frame.to_local(frame.to_geo(p));
    EXPECT_NEAR(back.x, p.x, 1e-6);
    EXPECT_NEAR(back.y, p.y, 1e-6);
  }
}

TEST(LocalFrame, AgreesWithHaversine) {
  const LocalFrame frame{{41.1780, -8.6080}};
  const Vec2 p{120.0, -80.0};
  const GeoPosition gp = frame.to_geo(p);
  EXPECT_NEAR(haversine_m(frame.origin(), gp), p.norm(), 0.05);
}

TEST(GeoArea, CircleContainment) {
  const GeoArea c = GeoArea::circle({10, 10}, 5.0);
  EXPECT_TRUE(c.contains({10, 10}));
  EXPECT_TRUE(c.contains({14.9, 10}));
  EXPECT_TRUE(c.contains({10, 15}));  // on the border: F == 0
  EXPECT_FALSE(c.contains({15.1, 10}));
  EXPECT_DOUBLE_EQ(c.bounding_radius(), 5.0);
}

TEST(GeoArea, GeometricFunctionSignsMatchEn302931) {
  const GeoArea e = GeoArea::ellipse({0, 0}, 4.0, 2.0, 0.0);
  EXPECT_GT(e.geometric_function({0, 0}), 0.0);    // inside
  EXPECT_NEAR(e.geometric_function({0, 4}), 0.0, 1e-12);  // border (long axis = north)
  EXPECT_LT(e.geometric_function({3, 0}), 0.0);    // outside (short axis = east)
}

TEST(GeoArea, RectangleWithAzimuth) {
  // Long axis rotated to east (azimuth 90 deg).
  const GeoArea rect = GeoArea::rectangle({0, 0}, 10.0, 2.0, M_PI / 2);
  EXPECT_TRUE(rect.contains({9, 0}));
  EXPECT_FALSE(rect.contains({0, 3}));
  EXPECT_TRUE(rect.contains({0, 1.9}));
  EXPECT_DOUBLE_EQ(rect.bounding_radius(), std::hypot(10.0, 2.0));
}

TEST(GeoArea, ContainmentInvariantUnderRotationProperty) {
  // Rotating both the area and the query point preserves containment.
  sim::RandomStream r{3, "area"};
  for (int i = 0; i < 300; ++i) {
    const double az = r.uniform(0.0, 2 * M_PI);
    const Vec2 p{r.uniform(-6, 6), r.uniform(-6, 6)};
    const GeoArea base = GeoArea::ellipse({0, 0}, 5.0, 2.0, 0.0);
    const GeoArea rotated = GeoArea::ellipse({0, 0}, 5.0, 2.0, az);
    // The point rotated clockwise by az (matching the azimuth convention).
    const Vec2 rotated_p = p.rotated(-az);
    EXPECT_EQ(base.contains(p), rotated.contains(rotated_p)) << "azimuth " << az;
  }
}

TEST(GeoArea, InvalidSemiDistanceThrows) {
  GeoArea bad = GeoArea::circle({0, 0}, 0.0);
  EXPECT_THROW((void)bad.contains({1, 1}), std::logic_error);
}

// --- Geodesy edge cases ------------------------------------------------------

TEST(Geodesy, AntimeridianCrossingDistanceIsShort) {
  // Two points 0.2 degrees of longitude apart straddling the +-180 line:
  // the great-circle distance must be the ~22 km short way across the
  // antimeridian, not the ~40000 km long way around.
  const GeoPosition west{0.0, 179.9};
  const GeoPosition east{0.0, -179.9};
  const double d = haversine_m(west, east);
  EXPECT_NEAR(d, 0.2 * 111194.9, 500.0);
  // Symmetry must hold regardless of crossing direction.
  EXPECT_DOUBLE_EQ(d, haversine_m(east, west));
}

TEST(Geodesy, AntimeridianIdenticalPointDifferentRepresentation) {
  // longitude +180 and -180 name the same meridian.
  const GeoPosition plus{10.0, 180.0};
  const GeoPosition minus{10.0, -180.0};
  EXPECT_NEAR(haversine_m(plus, minus), 0.0, 1e-6);
}

TEST(Geodesy, HighLatitudeLongitudeDegreesShrink) {
  // At 80 degrees north, one degree of longitude spans cos(80 deg) of its
  // equatorial width (~19.3 km instead of ~111 km).
  const GeoPosition a{80.0, 0.0};
  const GeoPosition b{80.0, 1.0};
  const double polar = haversine_m(a, b);
  const GeoPosition c{0.0, 0.0};
  const GeoPosition d{0.0, 1.0};
  const double equatorial = haversine_m(c, d);
  EXPECT_NEAR(polar / equatorial, std::cos(80.0 * M_PI / 180.0), 0.01);
  // A degree of latitude barely changes with latitude.
  const double lat_polar = haversine_m({80.0, 0.0}, {81.0, 0.0});
  EXPECT_NEAR(lat_polar / haversine_m({0.0, 0.0}, {1.0, 0.0}), 1.0, 0.01);
}

TEST(Geodesy, HighLatitudeLocalFrameRoundTripsAndBearsEast) {
  // The equirectangular frame must stay self-consistent at high latitude:
  // to_geo(to_local(p)) == p, and a due-east offset lands on the same
  // parallel with the compressed longitude spacing.
  const LocalFrame frame{{78.25, 15.5}};  // Svalbard
  const GeoPosition p{78.2517, 15.52};
  const GeoPosition rt = frame.to_geo(frame.to_local(p));
  EXPECT_NEAR(rt.latitude_deg, p.latitude_deg, 1e-9);
  EXPECT_NEAR(rt.longitude_deg, p.longitude_deg, 1e-9);

  const GeoPosition east_100m = frame.to_geo({100.0, 0.0});
  EXPECT_DOUBLE_EQ(east_100m.latitude_deg, 78.25);
  EXPECT_GT(east_100m.longitude_deg, 15.5);
  // Bearing check via the heading convention: the local displacement back
  // from geographic must point due east.
  const Vec2 disp = frame.to_local(east_100m);
  EXPECT_NEAR(heading_from_vector(disp), M_PI / 2, 1e-9);
  EXPECT_NEAR(disp.norm(), 100.0, 1e-6);
}

TEST(Geodesy, ZeroLengthSegments) {
  // Degenerate inputs must behave as exact identities, not accumulate
  // rounding noise.
  const GeoPosition p{41.178, -8.608};
  EXPECT_DOUBLE_EQ(haversine_m(p, p), 0.0);
  const LocalFrame frame{p};
  EXPECT_EQ(frame.to_local(p), (Vec2{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(distance({3.0, 4.0}, {3.0, 4.0}), 0.0);
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0.0, 0.0}));
}

TEST(GeoArea, DegenerateShapesStayConsistent) {
  // A tiny (epsilon) circle still contains its center and excludes
  // everything else.
  const GeoArea dot = GeoArea::circle({5.0, 5.0}, 1e-9);
  EXPECT_TRUE(dot.contains({5.0, 5.0}));
  EXPECT_FALSE(dot.contains({5.0 + 1e-6, 5.0}));
  EXPECT_DOUBLE_EQ(dot.bounding_radius(), 1e-9);

  // Extreme aspect-ratio rectangle: a 1 km x 1 cm sliver behaves like a
  // line segment along its azimuth.
  const GeoArea sliver = GeoArea::rectangle({0.0, 0.0}, 500.0, 0.005, M_PI / 2);
  EXPECT_TRUE(sliver.contains({499.0, 0.0}));
  EXPECT_FALSE(sliver.contains({0.0, 0.01}));
  EXPECT_FALSE(sliver.contains({501.0, 0.0}));

  // Zero and negative semi-distances must throw for every shape, not
  // silently divide by zero.
  EXPECT_THROW((void)GeoArea::ellipse({0, 0}, 0.0, 1.0).contains({0, 0}), std::logic_error);
  EXPECT_THROW((void)GeoArea::ellipse({0, 0}, 1.0, 0.0).contains({0, 0}), std::logic_error);
  EXPECT_THROW((void)GeoArea::rectangle({0, 0}, 1.0, -1.0).contains({0, 0}), std::logic_error);
  GeoArea negative = GeoArea::circle({0, 0}, -3.0);
  EXPECT_THROW((void)negative.contains({0, 0}), std::logic_error);
}

}  // namespace
}  // namespace rst::geo
