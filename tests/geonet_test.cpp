#include <gtest/gtest.h>

#include <memory>

#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"

namespace rst::its {
namespace {

using namespace rst::sim::literals;

struct Node {
  std::unique_ptr<dot11p::Radio> radio;
  std::unique_ptr<GeoNetRouter> router;
  std::vector<std::pair<std::vector<std::uint8_t>, GnDeliveryMeta>> delivered;
};

struct Rig {
  sim::Scheduler sched;
  sim::RandomStream rng{77, "gn_test"};
  geo::LocalFrame frame{{41.1780, -8.6080}};
  std::unique_ptr<dot11p::Medium> medium;
  std::vector<std::unique_ptr<Node>> nodes;

  explicit Rig(double exponent = 2.0, GeoNetConfig gn_config = {}) : gn_config_{gn_config} {
    dot11p::ChannelModel channel;
    channel.path_loss =
        std::make_shared<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(exponent));
    medium = std::make_unique<dot11p::Medium>(sched, rng.child("medium"), channel);
  }

  Node& add_node(std::uint32_t id, geo::Vec2 pos, dot11p::RadioConfig radio_config = {}) {
    auto node = std::make_unique<Node>();
    node->radio = std::make_unique<dot11p::Radio>(
        *medium, radio_config, [pos] { return pos; }, rng.child("r" + std::to_string(id)),
        "r" + std::to_string(id));
    node->router = std::make_unique<GeoNetRouter>(
        sched, *node->radio, frame, GnAddress::from_station(id),
        [pos] { return EgoState{pos, 0.0, 0.0}; }, gn_config_, rng.child("g" + std::to_string(id)));
    Node* raw = node.get();
    node->router->set_delivery_handler(
        [raw](const std::vector<std::uint8_t>& pdu, const GnDeliveryMeta& meta) {
          raw->delivered.emplace_back(pdu, meta);
        });
    nodes.push_back(std::move(node));
    return *nodes.back();
  }

  GeoNetConfig gn_config_{};
};

std::vector<std::uint8_t> payload_bytes() { return {0x01, 0x02, 0x03, 0x04}; }

TEST(GeoNet, ShbDeliversToNeighbours) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {20, 0});
  a.router->send_shb(payload_bytes(), dot11p::AccessCategory::Video);
  rig.sched.run();
  ASSERT_EQ(b.delivered.size(), 1u);
  EXPECT_EQ(b.delivered[0].first, payload_bytes());
  EXPECT_EQ(b.delivered[0].second.source, GnAddress::from_station(1));
  EXPECT_NEAR(b.delivered[0].second.source_position.x, 0.0, 0.5);
  EXPECT_EQ(a.router->stats().originated, 1u);
  EXPECT_EQ(b.router->stats().delivered_up, 1u);
}

TEST(GeoNet, ShbIsSingleHop) {
  // Three nodes in a line, radio range covers only adjacent pairs.
  Rig rig{2.5};
  dot11p::RadioConfig weak;
  weak.tx_power_dbm = 20.0;
  weak.rx_sensitivity_dbm = -80.0;
  weak.cs_threshold_dbm = -80.0;
  auto& a = rig.add_node(1, {0, 0}, weak);
  auto& b = rig.add_node(2, {150, 0}, weak);
  auto& c = rig.add_node(3, {300, 0}, weak);
  a.router->send_shb(payload_bytes(), dot11p::AccessCategory::Video);
  rig.sched.run_until(2_s);
  EXPECT_EQ(b.delivered.size(), 1u);
  EXPECT_TRUE(c.delivered.empty());  // never forwarded
  EXPECT_EQ(b.router->stats().forwarded, 0u);
}

TEST(GeoNet, LocationTableLearnsFromAllPackets) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {20, 0});
  a.router->send_shb(payload_bytes(), dot11p::AccessCategory::Video);
  rig.sched.run();
  const auto& table = b.router->location_table();
  const auto it = table.find(GnAddress::from_station(1).value);
  ASSERT_NE(it, table.end());
  EXPECT_EQ(it->second.packets_received, 1u);
  // Own address never appears in the local table.
  EXPECT_FALSE(a.router->location_table().contains(GnAddress::from_station(1).value));
}

TEST(GeoNet, GbcDeliversInsideAreaOnly) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  auto& inside = rig.add_node(2, {30, 0});
  auto& outside = rig.add_node(3, {0, 200});
  a.router->send_gbc(payload_bytes(), geo::GeoArea::circle({30, 0}, 50.0),
                     dot11p::AccessCategory::Voice);
  rig.sched.run_until(2_s);
  EXPECT_EQ(inside.delivered.size(), 1u);
  EXPECT_TRUE(outside.delivered.empty());
}

TEST(GeoNet, GbcMultiHopForwardingReachesAcrossRangeLimit) {
  Rig rig{2.5};
  dot11p::RadioConfig weak;
  weak.tx_power_dbm = 20.0;
  weak.rx_sensitivity_dbm = -80.0;
  weak.cs_threshold_dbm = -80.0;
  auto& a = rig.add_node(1, {0, 0}, weak);
  auto& b = rig.add_node(2, {150, 0}, weak);
  auto& c = rig.add_node(3, {300, 0}, weak);
  // Destination area covers everyone; c is unreachable directly from a.
  a.router->send_gbc(payload_bytes(), geo::GeoArea::circle({160, 0}, 400.0),
                     dot11p::AccessCategory::Voice);
  rig.sched.run_until(3_s);
  EXPECT_EQ(b.delivered.size(), 1u);
  ASSERT_EQ(c.delivered.size(), 1u);
  EXPECT_EQ(b.router->stats().forwarded, 1u);
  EXPECT_GE(c.delivered[0].second.hops_traversed, 1u);
}

TEST(GeoNet, DuplicateDetectionSuppressesRebroadcastStorm) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {20, 0});
  auto& c = rig.add_node(3, {40, 0});
  a.router->send_gbc(payload_bytes(), geo::GeoArea::circle({20, 0}, 100.0),
                     dot11p::AccessCategory::Voice);
  rig.sched.run_until(3_s);
  // Each node delivers the payload exactly once despite forwarding.
  EXPECT_EQ(b.delivered.size(), 1u);
  EXPECT_EQ(c.delivered.size(), 1u);
  // CBF: at most a bounded number of forwards happen for one packet.
  const auto total_forwards = b.router->stats().forwarded + c.router->stats().forwarded;
  EXPECT_LE(total_forwards, 2u);
  const auto suppressed = b.router->stats().cbf_suppressed + c.router->stats().cbf_suppressed +
                          b.router->stats().duplicates_dropped + c.router->stats().duplicates_dropped;
  EXPECT_GE(suppressed, 1u);
}

TEST(GeoNet, TsbFloodsUpToHopLimit) {
  Rig rig{2.5};
  dot11p::RadioConfig weak;
  weak.tx_power_dbm = 20.0;
  weak.rx_sensitivity_dbm = -80.0;
  weak.cs_threshold_dbm = -80.0;
  auto& a = rig.add_node(1, {0, 0}, weak);
  rig.add_node(2, {150, 0}, weak);
  auto& c = rig.add_node(3, {300, 0}, weak);
  a.router->send_tsb(payload_bytes(), 1, dot11p::AccessCategory::Video);
  rig.sched.run_until(1_s);
  EXPECT_TRUE(c.delivered.empty());  // hop limit 1: no forwarding

  a.router->send_tsb(payload_bytes(), 3, dot11p::AccessCategory::Video);
  rig.sched.run_until(3_s);
  EXPECT_EQ(c.delivered.size(), 1u);
}

TEST(GeoNet, OutOfAreaNodeForwardsOnlyWithProgress) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  // d is behind a relative to the area: no geometric progress, must drop.
  auto& behind = rig.add_node(2, {-50, 0});
  a.router->send_gbc(payload_bytes(), geo::GeoArea::circle({500, 0}, 50.0),
                     dot11p::AccessCategory::Voice, 5);
  rig.sched.run_until(2_s);
  EXPECT_TRUE(behind.delivered.empty());
  EXPECT_EQ(behind.router->stats().forwarded, 0u);
  EXPECT_EQ(behind.router->stats().out_of_area_dropped, 1u);
}

TEST(GeoNet, GucDeliversOnlyToTheDestination) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {20, 0});
  auto& c = rig.add_node(3, {40, 0});
  // a knows b's position from a prior broadcast.
  b.router->send_shb({0x42}, dot11p::AccessCategory::Video);
  rig.sched.run_until(100_ms);
  EXPECT_TRUE(a.router->send_guc(payload_bytes(), GnAddress::from_station(2),
                                 dot11p::AccessCategory::Video));
  rig.sched.run_until(1_s);
  // b got the unicast; c overheard the frame but did not deliver it up.
  ASSERT_EQ(b.delivered.size(), 1u);
  EXPECT_EQ(b.delivered[0].first, payload_bytes());
  for (const auto& [pdu, meta] : c.delivered) {
    EXPECT_NE(pdu, payload_bytes());
  }
}

TEST(GeoNet, LocationServiceResolvesUnknownDestination) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {20, 0});
  // a has never heard from b: the GUC is buffered, an LS request floods,
  // b answers, and the buffered PDU goes out.
  EXPECT_FALSE(a.router->location_table().contains(GnAddress::from_station(2).value));
  EXPECT_TRUE(a.router->send_guc(payload_bytes(), GnAddress::from_station(2),
                                 dot11p::AccessCategory::Video));
  rig.sched.run_until(2_s);
  ASSERT_EQ(b.delivered.size(), 1u);
  EXPECT_EQ(b.delivered[0].first, payload_bytes());
  EXPECT_EQ(a.router->stats().ls_requests_sent, 1u);
  EXPECT_EQ(b.router->stats().ls_replies_sent, 1u);
  // The resolved position is now cached for future unicasts.
  EXPECT_TRUE(a.router->location_table().contains(GnAddress::from_station(2).value));
}

TEST(GeoNet, LocationServiceRequestFloodsAcrossHops) {
  Rig rig{2.5};
  dot11p::RadioConfig weak;
  weak.tx_power_dbm = 20.0;
  weak.rx_sensitivity_dbm = -80.0;
  weak.cs_threshold_dbm = -80.0;
  auto& a = rig.add_node(1, {0, 0}, weak);
  rig.add_node(2, {150, 0}, weak);
  auto& c = rig.add_node(3, {300, 0}, weak);
  // c is out of a's direct range; the LS request must be relayed by b and
  // the reply routed back, then the GUC forwarded greedily.
  EXPECT_TRUE(a.router->send_guc(payload_bytes(), GnAddress::from_station(3),
                                 dot11p::AccessCategory::Video));
  rig.sched.run_until(5_s);
  bool c_got_payload = false;
  for (const auto& [pdu, meta] : c.delivered) c_got_payload |= pdu == payload_bytes();
  EXPECT_TRUE(c_got_payload);
  EXPECT_EQ(c.router->stats().ls_replies_sent, 1u);
}

TEST(GeoNet, LsBufferCapacityBounded) {
  GeoNetConfig gn;
  gn.ls_buffer_capacity = 2;
  Rig rig{2.0, gn};
  auto& a = rig.add_node(1, {0, 0});
  // No such station exists: the buffer fills and then rejects.
  EXPECT_TRUE(a.router->send_guc({1}, GnAddress::from_station(99), dot11p::AccessCategory::Video));
  EXPECT_TRUE(a.router->send_guc({2}, GnAddress::from_station(99), dot11p::AccessCategory::Video));
  EXPECT_FALSE(a.router->send_guc({3}, GnAddress::from_station(99), dot11p::AccessCategory::Video));
  EXPECT_EQ(a.router->stats().ls_buffer_dropped, 1u);
}

TEST(GeoNet, GucForwardsGreedilyAcrossRangeLimit) {
  Rig rig{2.5};
  dot11p::RadioConfig weak;
  weak.tx_power_dbm = 20.0;
  weak.rx_sensitivity_dbm = -80.0;
  weak.cs_threshold_dbm = -80.0;
  auto& a = rig.add_node(1, {0, 0}, weak);
  auto& b = rig.add_node(2, {150, 0}, weak);
  auto& c = rig.add_node(3, {300, 0}, weak);
  // Teach a where c is (c cannot reach a directly: inject via b's relay of
  // a beacon-equivalent — simplest: seed the location tables through TSB).
  c.router->send_tsb({0x01}, 3, dot11p::AccessCategory::Video);
  rig.sched.run_until(2_s);
  ASSERT_TRUE(a.router->location_table().contains(GnAddress::from_station(3).value));

  EXPECT_TRUE(a.router->send_guc(payload_bytes(), GnAddress::from_station(3),
                                 dot11p::AccessCategory::Video));
  rig.sched.run_until(4_s);
  // Delivered across the range limit via b's greedy forwarding.
  bool c_got_payload = false;
  for (const auto& [pdu, meta] : c.delivered) c_got_payload |= pdu == payload_bytes();
  EXPECT_TRUE(c_got_payload);
  EXPECT_GE(b.router->stats().forwarded, 1u);
}

TEST(GeoNet, GucPacketRoundTripsOnTheWire) {
  GnPacket pkt;
  pkt.type = GnPacketType::Guc;
  pkt.sequence_number = 9;
  pkt.source.address = GnAddress::from_station(1);
  pkt.forwarder = pkt.source;
  LongPositionVector dest;
  dest.address = GnAddress::from_station(2);
  dest.latitude = 411780000;
  dest.longitude = -86080000;
  pkt.destination = dest;
  pkt.payload = {9, 8, 7};
  EXPECT_EQ(GnPacket::decode(pkt.encode()), pkt);
}

TEST(GeoNet, BeaconingPopulatesLocationTables) {
  GeoNetConfig gn;
  gn.enable_beaconing = true;
  gn.beacon_interval = 500_ms;
  Rig rig{2.0, gn};
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {30, 0});
  (void)a;
  rig.sched.run_until(3_s);
  EXPECT_TRUE(b.router->location_table().contains(GnAddress::from_station(1).value));
  EXPECT_TRUE(a.router->location_table().contains(GnAddress::from_station(2).value));
  // Beacons carry no payload: nothing is delivered up.
  EXPECT_TRUE(a.delivered.empty());
  EXPECT_TRUE(b.delivered.empty());
}

TEST(GeoNet, LocationTableEntriesExpire) {
  GeoNetConfig gn;
  gn.location_entry_lifetime = 1_s;
  Rig rig{2.0, gn};
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {30, 0});
  a.router->send_shb(payload_bytes(), dot11p::AccessCategory::Video);
  rig.sched.run_until(100_ms);
  EXPECT_TRUE(b.router->location_table().contains(GnAddress::from_station(1).value));
  rig.sched.run_until(3_s);
  // Trigger table maintenance via another reception.
  b.router->send_shb(payload_bytes(), dot11p::AccessCategory::Video);
  rig.sched.run_until(4_s);
  EXPECT_FALSE(b.router->location_table().contains(GnAddress::from_station(1).value));
}

TEST(GeoNet, ExpiredPacketsAreDroppedNotProcessed) {
  Rig rig;
  auto& a = rig.add_node(1, {0, 0});
  auto& b = rig.add_node(2, {20, 0});
  // Hand-craft a packet whose source timestamp lies beyond its lifetime.
  rig.sched.run_until(10_s);
  GnPacket stale;
  stale.type = GnPacketType::Shb;
  stale.remaining_hop_limit = 1;
  stale.lifetime_50ms = 20;  // 1 s lifetime
  stale.source.address = GnAddress::from_station(1);
  stale.source.timestamp_ms = 1000;  // 9 s old
  stale.forwarder = stale.source;
  stale.payload = payload_bytes();
  dot11p::Frame f;
  f.payload = stale.encode();
  // Bypass the router's origination: send the raw frame.
  struct RawSender {
    dot11p::Radio& radio;
  } sender{*a.radio};
  sender.radio.send(std::move(f));
  rig.sched.run_until(11_s);
  EXPECT_TRUE(b.delivered.empty());
  EXPECT_EQ(b.router->stats().lifetime_expired_dropped, 1u);

  // A fresh timestamp passes.
  stale.source.timestamp_ms = 11000;
  dot11p::Frame fresh;
  fresh.payload = stale.encode();
  sender.radio.send(std::move(fresh));
  rig.sched.run_until(12_s);
  EXPECT_EQ(b.delivered.size(), 1u);
}

TEST(GeoNet, PositionVectorReflectsEgoState) {
  Rig rig;
  auto& a = rig.add_node(1, {12, 34});
  auto& b = rig.add_node(2, {20, 34});
  a.router->send_shb(payload_bytes(), dot11p::AccessCategory::Video);
  rig.sched.run();
  ASSERT_EQ(b.delivered.size(), 1u);
  EXPECT_NEAR(b.delivered[0].second.source_position.x, 12.0, 0.2);
  EXPECT_NEAR(b.delivered[0].second.source_position.y, 34.0, 0.2);
}

}  // namespace
}  // namespace rst::its
