#include <gtest/gtest.h>

#include "rst/core/testbed.hpp"
#include "rst/sim/stats.hpp"
#include "rst/vehicle/gnss.hpp"

namespace rst::vehicle {
namespace {

using namespace rst::sim::literals;

TEST(Gnss, FixesAtConfiguredRateWithBoundedError) {
  sim::Scheduler sched;
  sim::RandomStream rng{606, "gnss_test"};
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  dyn.reset({0, 0}, 0.0, 1.0);
  dyn.start();
  GnssReceiver gnss{sched, dyn, rng.child("gnss")};
  gnss.start();

  sim::RunningStats error;
  for (int i = 0; i < 100; ++i) {
    sched.run_until(sched.now() + 100_ms);
    error.add(gnss.error_m());
  }
  EXPECT_GE(gnss.fixes(), 99u);
  // Error stays in the sub-metre-to-metre regime of consumer GNSS.
  EXPECT_GT(error.mean(), 0.1);
  EXPECT_LT(error.mean(), 2.0);
  EXPECT_LT(error.max(), 4.0);
}

TEST(Gnss, BiasDecayKeepsTheWalkBounded) {
  sim::Scheduler sched;
  sim::RandomStream rng{607, "gnss_test2"};
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  dyn.reset({0, 0}, 0.0, 0.0);  // parked: all error is receiver error
  dyn.start();
  GnssReceiver gnss{sched, dyn, rng.child("gnss")};
  gnss.start();
  double worst = 0;
  for (int i = 0; i < 600; ++i) {  // one minute of fixes
    sched.run_until(sched.now() + 100_ms);
    worst = std::max(worst, gnss.error_m());
  }
  EXPECT_LT(worst, 5.0);  // the random walk does not diverge
}

TEST(Gnss, StopFreezesTheFix) {
  sim::Scheduler sched;
  sim::RandomStream rng{608, "gnss_test3"};
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  dyn.reset({0, 0}, 0.0, 1.0);
  dyn.start();
  GnssReceiver gnss{sched, dyn, rng.child("gnss")};
  gnss.start();
  sched.run_until(1_s);
  gnss.stop();
  const auto frozen = gnss.position();
  sched.run_until(3_s);
  EXPECT_EQ(gnss.position(), frozen);
}

}  // namespace
}  // namespace rst::vehicle

namespace rst::core {
namespace {

using namespace rst::sim::literals;

TEST(TestbedGnss, ChainStillWorksWithGnssPositions) {
  TestbedConfig config;
  config.seed = 55;
  config.use_gnss = true;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  EXPECT_LT(r.meas_total_ms, 100.0);
  ASSERT_NE(scenario.gnss(), nullptr);
  EXPECT_GT(scenario.gnss()->fixes(), 10u);
}

TEST(TestbedGnss, LdmPositionErrorReflectsGnss) {
  TestbedConfig truth_config;
  truth_config.seed = 56;
  TestbedScenario truth_scenario{truth_config};
  truth_scenario.start_services();
  truth_scenario.scheduler().run_until(3_s);
  const auto truth_entry = truth_scenario.rsu().ldm().vehicle(truth_config.obu.station_id);
  ASSERT_TRUE(truth_entry.has_value());
  const double truth_error =
      geo::distance(truth_entry->position, truth_scenario.dynamics().position());

  TestbedConfig gnss_config;
  gnss_config.seed = 56;
  gnss_config.use_gnss = true;
  gnss_config.gnss.initial_bias_sigma_m = 1.5;
  TestbedScenario gnss_scenario{gnss_config};
  gnss_scenario.start_services();
  gnss_scenario.scheduler().run_until(3_s);
  const auto gnss_entry = gnss_scenario.rsu().ldm().vehicle(gnss_config.obu.station_id);
  ASSERT_TRUE(gnss_entry.has_value());
  const double gnss_error =
      geo::distance(gnss_entry->position, gnss_scenario.dynamics().position());

  // Ground-truth CAMs land within CAM-staleness error; GNSS CAMs carry the
  // receiver error on top.
  EXPECT_LT(truth_error, 1.5);
  EXPECT_GT(gnss_error, 0.05);
}

}  // namespace
}  // namespace rst::core
