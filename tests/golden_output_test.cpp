// Golden-output regression guard for the default single-RSU experiment
// path. The canonical Table II / Table III renderings of the seed-42
// 5-trial campaign are pinned byte for byte: any change to the default
// testbed configuration, the stochastic draw order, the latency pipeline
// or the table formatting shows up here as a readable string diff. The
// city-scale scenario work rides on the same stack, so this is the
// guarantee that it left the default path untouched.

#include <gtest/gtest.h>

#include <string>

#include "rst/core/experiment.hpp"

namespace rst {
namespace {

// Exact output of format_table2/format_table3 for the paper-protocol
// campaign (TestbedConfig defaults, seed 42, 5 trials). Regenerate only
// when a deliberate behavior change is being made, and say so in the PR.
const std::string kGoldenTable2 =
    "Table II: Time interval measurements (ms)\n"
    "  Interval                         run#1  run#2  run#3  run#4  run#5    Avg\n"
    "  #2->#3 Detection -> RSU DENM     31.8   23.2   22.0   28.8   19.7   25.1\n"
    "  #3->#4 RSU DENM -> OBU recv       1.1    0.8    0.9    0.8    1.0    0.9\n"
    "  #4->#5 OBU recv -> actuators     25.3   50.4   34.5   29.7   50.2   38.0\n"
    "  Total delay (#2->#5)             58.2   74.4   57.4   59.3   70.9   64.1\n"
    "  paper: 27.6 / 1.6 / 29.2 / 58.4 ms avg over 5 runs; all totals < 100 ms\n";

const std::string kGoldenTable3 =
    "Table III: Distance travelled from detection to halt (m)\n"
    "  run#1: 0.33  run#2: 0.35  run#3: 0.38  run#4: 0.37  run#5: 0.36  \n"
    "  avg 0.359 m, variance 0.0004 (paper: avg 0.36 m, var 0.0022)\n";

core::ExperimentSummary paper_campaign(unsigned threads) {
  core::TestbedConfig config;
  config.seed = 42;
  return core::run_emergency_brake_experiment(config, 5, threads);
}

TEST(GoldenOutput, Table2IsByteIdenticalToTheSeedRendering) {
  const auto summary = paper_campaign(1);
  EXPECT_EQ(core::format_table2(summary), kGoldenTable2);
}

TEST(GoldenOutput, Table3IsByteIdenticalToTheSeedRendering) {
  const auto summary = paper_campaign(1);
  EXPECT_EQ(core::format_table3(summary), kGoldenTable3);
}

TEST(GoldenOutput, RenderingIsThreadCountInvariant) {
  const auto pooled = paper_campaign(4);
  EXPECT_EQ(core::format_table2(pooled), kGoldenTable2);
  EXPECT_EQ(core::format_table3(pooled), kGoldenTable3);
}

}  // namespace
}  // namespace rst
