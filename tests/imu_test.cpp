#include <gtest/gtest.h>

#include "rst/middleware/message_bus.hpp"
#include "rst/sim/stats.hpp"
#include "rst/vehicle/control_module.hpp"
#include "rst/vehicle/imu.hpp"

namespace rst::vehicle {
namespace {

using namespace rst::sim::literals;

struct ImuRig {
  sim::Scheduler sched;
  sim::RandomStream rng{808, "imu_test"};
  middleware::MessageBus bus{sched, rng.child("bus")};
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  Imu imu{sched, bus, dyn, rng.child("imu")};

  ImuRig() { dyn.reset({0, 0}, 0.0); }
};

TEST(Imu, PublishesAtConfiguredRate) {
  ImuRig rig;
  int samples = 0;
  rig.bus.subscribe_to<ImuSample>("imu", [&](const ImuSample&) { ++samples; });
  rig.imu.start();
  rig.sched.run_until(1050_ms);
  EXPECT_GE(samples, 100);
  EXPECT_LE(samples, 106);
  rig.imu.stop();
}

TEST(Imu, MeasuresAccelerationWithBiasAndNoise) {
  ImuRig rig;
  rig.dyn.reset({0, 0}, 0.0, 0.0);
  rig.dyn.set_throttle(0.5);
  rig.dyn.start();
  sim::RunningStats accel;
  rig.bus.subscribe_to<ImuSample>("imu", [&](const ImuSample& s) {
    accel.add(s.longitudinal_accel_mps2);
  });
  rig.imu.start();
  rig.sched.run_until(400_ms);  // early acceleration phase
  ASSERT_GT(accel.count(), 20u);
  // Throttle 0.5 -> ~1.5 m/s^2 at low speed; the mean should land near the
  // true value offset by the (bounded) bias.
  EXPECT_NEAR(accel.mean(), 1.5, 0.5);
  EXPECT_GT(accel.stddev(), 0.01);  // noise present
}

TEST(Imu, YawRateTracksTurning) {
  ImuRig rig;
  rig.dyn.reset({0, 0}, 0.0, 1.0);
  rig.dyn.set_throttle(0.1);
  rig.dyn.set_steering(0.2);
  rig.dyn.start();
  sim::RunningStats yaw;
  rig.bus.subscribe_to<ImuSample>("imu", [&](const ImuSample& s) { yaw.add(s.yaw_rate_radps); });
  rig.imu.start();
  rig.sched.run_until(1_s);
  // Kinematic yaw rate ~ v/L * tan(0.2) ~ 1.0/0.325*0.203 ~ 0.62 rad/s.
  EXPECT_NEAR(yaw.mean(), 0.62, 0.25);
}

TEST(SpeedEstimator, TracksTrueSpeedThroughManoeuvre) {
  ImuRig rig;
  ControlModule control{rig.sched, rig.bus, rig.dyn, rig.rng.child("ctl")};
  SpeedEstimator estimator{rig.sched, rig.bus};
  rig.dyn.reset({0, 0}, 0.0, 0.0);
  rig.dyn.start();
  rig.imu.start();
  control.start();

  rig.dyn.set_throttle(0.3);
  rig.sched.run_until(3_s);
  EXPECT_NEAR(estimator.speed_mps(), rig.dyn.speed_mps(), 0.25);
  rig.dyn.cut_power();
  rig.sched.run_until(6_s);
  EXPECT_NEAR(estimator.speed_mps(), 0.0, 0.2);
  EXPECT_GT(estimator.imu_updates(), 400u);
  EXPECT_GT(estimator.odometry_updates(), 100u);
}

TEST(SpeedEstimator, OdometryCorrectsImuDrift) {
  // Without odometry fixes, integrating a biased IMU drifts; the fixes
  // bound the error.
  ImuRig rig;
  SpeedEstimator no_fix{rig.sched, rig.bus};
  rig.dyn.reset({0, 0}, 0.0, 1.0);
  rig.dyn.start();  // coasting: slow decay
  rig.imu.start();
  rig.sched.run_until(10_s);
  // The drift-only estimator started at 0 and integrated noise+bias.
  const double drift_error = std::abs(no_fix.speed_mps() - rig.dyn.speed_mps());

  ImuRig rig2;
  ControlModule control{rig2.sched, rig2.bus, rig2.dyn, rig2.rng.child("ctl")};
  SpeedEstimator with_fix{rig2.sched, rig2.bus};
  rig2.dyn.reset({0, 0}, 0.0, 1.0);
  rig2.dyn.start();
  rig2.imu.start();
  control.start();
  rig2.sched.run_until(10_s);
  const double corrected_error = std::abs(with_fix.speed_mps() - rig2.dyn.speed_mps());
  EXPECT_LT(corrected_error, 0.15);
  EXPECT_LE(corrected_error, drift_error + 0.05);
}

}  // namespace
}  // namespace rst::vehicle
