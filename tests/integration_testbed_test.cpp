#include <gtest/gtest.h>

#include "rst/core/experiment.hpp"
#include "rst/core/testbed.hpp"
#include "rst/middleware/kv.hpp"

namespace rst::core {
namespace {

using namespace rst::sim::literals;

TEST(Testbed, EmergencyBrakeTrialCompletesTheFullChain) {
  TestbedConfig config;
  config.seed = 7;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();

  ASSERT_FALSE(r.timed_out);
  ASSERT_TRUE(r.stopped_by_denm);

  // Causal ordering of the paper's steps 1..6.
  EXPECT_LE(r.t_cross_actual, r.t_detection + 1_ms);
  EXPECT_LT(r.t_detection, r.t_rsu_send);
  EXPECT_LT(r.t_rsu_send, r.t_obu_receive);
  EXPECT_LT(r.t_obu_receive, r.t_power_cut);
  EXPECT_LT(r.t_power_cut, r.t_halt);

  // Shape of Table II: the wireless hop is a minimal part of the total.
  EXPECT_GT(r.meas_rsu_to_obu_ms, 0.0);
  EXPECT_LT(r.meas_rsu_to_obu_ms, 10.0);
  EXPECT_LT(r.meas_rsu_to_obu_ms, r.meas_detection_to_rsu_ms);
  EXPECT_LT(r.meas_rsu_to_obu_ms, r.meas_obu_to_actuator_ms);

  // Headline result: detection-to-actuation under 100 ms.
  EXPECT_LT(r.meas_total_ms, 100.0);
  EXPECT_GT(r.meas_total_ms, 5.0);

  // The vehicle actually stops near the camera, short of a collision.
  EXPECT_GT(r.braking_distance_m, 0.05);
  EXPECT_LT(r.braking_distance_m, 1.2);
  EXPECT_GT(r.stop_distance_to_camera_m, 0.0);
}

TEST(Testbed, VehicleIsStationaryAfterTrial) {
  TestbedConfig config;
  config.seed = 8;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  EXPECT_TRUE(scenario.dynamics().stopped());
  EXPECT_TRUE(scenario.dynamics().power_cut());
  EXPECT_TRUE(scenario.planner().stopped());
  // Running further must not move the car again.
  const geo::Vec2 pos = scenario.dynamics().position();
  scenario.scheduler().run_until(scenario.scheduler().now() + 2_s);
  EXPECT_NEAR(geo::distance(pos, scenario.dynamics().position()), 0.0, 1e-6);
}

TEST(Testbed, DeterministicForSameSeed) {
  TestbedConfig config;
  config.seed = 99;
  TestbedScenario a{config};
  TestbedScenario b{config};
  const TrialResult ra = a.run_emergency_brake_trial();
  const TrialResult rb = b.run_emergency_brake_trial();
  ASSERT_TRUE(ra.stopped_by_denm);
  ASSERT_TRUE(rb.stopped_by_denm);
  EXPECT_EQ(ra.t_detection, rb.t_detection);
  EXPECT_EQ(ra.t_power_cut, rb.t_power_cut);
  EXPECT_DOUBLE_EQ(ra.braking_distance_m, rb.braking_distance_m);
}

TEST(Testbed, DifferentSeedsGiveDifferentSamples) {
  TestbedConfig a_config;
  a_config.seed = 1;
  TestbedConfig b_config;
  b_config.seed = 2;
  TestbedScenario a{a_config};
  TestbedScenario b{b_config};
  const TrialResult ra = a.run_emergency_brake_trial();
  const TrialResult rb = b.run_emergency_brake_trial();
  ASSERT_TRUE(ra.stopped_by_denm);
  ASSERT_TRUE(rb.stopped_by_denm);
  EXPECT_NE(ra.meas_total_ms, rb.meas_total_ms);
}

TEST(Testbed, CamsPopulateRsuLdm) {
  TestbedConfig config;
  config.seed = 3;
  TestbedScenario scenario{config};
  scenario.start_services();
  scenario.scheduler().run_until(3_s);
  // The RSU's LDM should know the protagonist vehicle from its CAMs.
  const auto vehicle = scenario.rsu().ldm().vehicle(config.obu.station_id);
  ASSERT_TRUE(vehicle.has_value());
  EXPECT_GT(vehicle->cam_count, 1u);
  EXPECT_EQ(vehicle->station_type, its::StationType::PassengerCar);
  // And the position roughly matches the actual vehicle position.
  EXPECT_LT(geo::distance(vehicle->position, scenario.dynamics().position()), 1.5);
}

TEST(Testbed, WithoutRoadsideServicesVehicleDoesNotStop) {
  TestbedConfig config;
  config.seed = 4;
  TestbedScenario scenario{config};
  scenario.start_services();
  scenario.hazard().stop();  // infrastructure assistance disabled
  scenario.scheduler().run_until(12_s);
  EXPECT_FALSE(scenario.dynamics().power_cut());
  // The car drives past the camera / action point unimpeded.
  EXPECT_GT(scenario.dynamics().odometer_m(), 5.0);
}

TEST(Experiment, FiveRunCampaignMatchesPaperShape) {
  TestbedConfig config;
  config.seed = 1000;
  const ExperimentSummary summary = run_emergency_brake_experiment(config, 5);
  EXPECT_EQ(summary.failures, 0u);
  ASSERT_EQ(summary.total_ms.count(), 5u);

  // Table II shape: RSU->OBU is ~1-2 ms and the smallest component;
  // detection->RSU and OBU->actuators tens of ms; total < 100 ms.
  EXPECT_LT(summary.rsu_to_obu_ms.mean(), 5.0);
  EXPECT_LT(summary.rsu_to_obu_ms.mean(), summary.detection_to_rsu_ms.mean());
  EXPECT_LT(summary.rsu_to_obu_ms.mean(), summary.obu_to_actuator_ms.mean());
  EXPECT_GT(summary.detection_to_rsu_ms.mean(), 10.0);
  EXPECT_GT(summary.obu_to_actuator_ms.mean(), 10.0);
  EXPECT_LT(summary.total_ms.max(), 100.0);

  // Table III shape: braking distance around a few tenths of a metre and
  // below one vehicle length-ish bound.
  EXPECT_GT(summary.braking_distance_m.mean(), 0.15);
  EXPECT_LT(summary.braking_distance_m.mean(), 0.8);
}

TEST(Testbed, OpenC2xApiEndpointsServeTheWebInterface) {
  TestbedConfig config;
  config.seed = 33;
  TestbedScenario scenario{config};
  scenario.start_services();
  scenario.scheduler().run_until(3_s);

  // /cam_table on the RSU shows the CAM-known protagonist.
  std::string cam_table;
  scenario.rsu().http().post(scenario.rsu().name(), "/cam_table", {},
                             [&](const middleware::HttpResponse& r) { cam_table = r.body; });
  // /trigger_cam on the OBU forces an extra CAM.
  const auto cams_before = scenario.obu().ca().stats().cams_sent;
  int trigger_status = 0;
  scenario.obu().http().post(scenario.obu().name(), "/trigger_cam", {},
                             [&](const middleware::HttpResponse& r) { trigger_status = r.status; });
  scenario.scheduler().run_until(scenario.scheduler().now() + 200_ms);

  const auto kv = middleware::KvBody::parse(cam_table);
  EXPECT_GE(kv.get_int("count").value_or(0), 1);
  EXPECT_EQ(kv.get_int("station0.id"), config.obu.station_id);
  EXPECT_EQ(trigger_status, 200);
  EXPECT_GT(scenario.obu().ca().stats().cams_sent, cams_before);
}

TEST(Testbed, CustomBtpPortServicesCanBeRegistered) {
  TestbedConfig config;
  config.seed = 34;
  TestbedScenario scenario{config};
  scenario.start_services();

  // A bespoke application protocol on BTP port 3001 from RSU to OBU.
  std::vector<std::uint8_t> received;
  scenario.obu().btp().register_port(
      3001, [&](const std::vector<std::uint8_t>& payload, const its::GnDeliveryMeta&) {
        received = payload;
      });
  const std::vector<std::uint8_t> payload{0xca, 0xfe};
  scenario.rsu().router().send_gbc(its::BtpHeader{3001, 0}.prepend_to(payload),
                                   geo::GeoArea::circle({0, 0}, 200.0),
                                   dot11p::AccessCategory::BestEffort);
  scenario.scheduler().run_until(scenario.scheduler().now() + 500_ms);
  EXPECT_EQ(received, payload);
  EXPECT_GE(scenario.obu().btp().stats().dispatched, 1u);
}

TEST(Testbed, CellularWarningPathStopsTheVehicle) {
  TestbedConfig config;
  config.seed = 21;
  config.warning_path = WarningPath::CellularUrllc;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  // Push delivery: no polling component, so OBU->actuator is small.
  EXPECT_LT(r.meas_obu_to_actuator_ms, 6.0);
  EXPECT_LT(r.meas_total_ms, 100.0);
  // The ITS-G5 polling loop was never engaged.
  EXPECT_EQ(scenario.message_handler().stats().polls, 0u);
}

TEST(Testbed, EmbbPathSlowerRadioButStillUnder100ms) {
  TestbedConfig config;
  config.seed = 22;
  config.warning_path = WarningPath::CellularEmbb;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  // The eMBB radio hop is an order of magnitude above ITS-G5's ~1.6 ms.
  EXPECT_GT(r.meas_rsu_to_obu_ms, 8.0);
  EXPECT_LT(r.meas_total_ms, 100.0);
}

TEST(Testbed, StationLevelDccStillStopsTheVehicle) {
  TestbedConfig config;
  config.seed = 36;
  config.obu.enable_dcc = true;
  config.rsu.enable_dcc = true;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  ASSERT_NE(scenario.rsu().dcc(), nullptr);
  // With an idle channel the DCC stays Relaxed; the DENM pays at most the
  // 60 ms gate if a CAM just went out, so the total can stretch but the
  // chain still completes within a safe bound.
  EXPECT_EQ(scenario.rsu().dcc()->state(), its::dcc::DccState::Relaxed);
  EXPECT_LT(r.meas_total_ms, 170.0);
  EXPECT_GT(scenario.rsu().dcc()->stats().passed, 0u);
}

TEST(Testbed, StatusEndpointReportsTheStack) {
  TestbedConfig config;
  config.seed = 35;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  std::string status;
  scenario.obu().http().post(scenario.obu().name(), "/status", {},
                             [&](const middleware::HttpResponse& resp) { status = resp.body; });
  scenario.scheduler().run_until(scenario.scheduler().now() + 100_ms);
  EXPECT_NE(status.find("station 42 'obu'"), std::string::npos);
  EXPECT_NE(status.find("radio: tx="), std::string::npos);
  EXPECT_NE(status.find("den: sent=0 received=1"), std::string::npos);
  // The direct API produces the same sections (contents are a live
  // snapshot, so only the shape is compared).
  const std::string direct = scenario.obu().status_report();
  for (const char* section : {"radio:", "geonet:", "btp:", "ca:", "den:"}) {
    EXPECT_NE(direct.find(section), std::string::npos) << section;
  }
}

TEST(Testbed, ConfigValidationRejectsNonsense) {
  {
    TestbedConfig bad;
    bad.planner.target_speed_mps = 0.0;
    EXPECT_THROW((TestbedScenario{bad}), std::invalid_argument);
  }
  {
    TestbedConfig bad;
    bad.message_handler.poll_period = sim::SimTime::zero();
    EXPECT_THROW((TestbedScenario{bad}), std::invalid_argument);
  }
  {
    TestbedConfig bad;
    bad.track_end = bad.track_start;
    EXPECT_THROW((TestbedScenario{bad}), std::invalid_argument);
  }
  {
    TestbedConfig bad;
    bad.rsu.station_id = bad.obu.station_id;
    EXPECT_THROW((TestbedScenario{bad}), std::invalid_argument);
  }
  {
    TestbedConfig bad;
    bad.rsu.name = bad.obu.name;
    EXPECT_THROW((TestbedScenario{bad}), std::invalid_argument);
  }
  // The default configuration is valid.
  EXPECT_NO_THROW(TestbedConfig{}.validate());
}

TEST(Experiment, ReportsRenderWithoutCrashing) {
  TestbedConfig config;
  config.seed = 2000;
  const ExperimentSummary summary = run_emergency_brake_experiment(config, 3);
  const std::string t2 = format_table2(summary);
  const std::string t3 = format_table3(summary);
  EXPECT_NE(t2.find("Table II"), std::string::npos);
  EXPECT_NE(t2.find("Total delay"), std::string::npos);
  EXPECT_NE(t3.find("Table III"), std::string::npos);
}

}  // namespace
}  // namespace rst::core
