#include <gtest/gtest.h>

#include "rst/its/messages/cam.hpp"
#include "rst/its/messages/cause_code.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/btp_mux.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/sim/random.hpp"

namespace rst::its {
namespace {

using namespace rst::sim::literals;

Cam make_cam(StationId id) {
  Cam cam;
  cam.header.station_id = id;
  cam.generation_delta_time = 12345;
  cam.basic.station_type = StationType::PassengerCar;
  cam.basic.reference_position.latitude = 411780000;
  cam.basic.reference_position.longitude = -86080000;
  cam.high_frequency.heading = Heading{901, 5};
  cam.high_frequency.speed = Speed::from_mps(1.2);
  cam.high_frequency.drive_direction = DriveDirection::Forward;
  cam.high_frequency.vehicle_length_dm = 5;
  cam.high_frequency.vehicle_width_dm = 3;
  return cam;
}

Denm make_denm(StationId id, std::uint16_t seq) {
  Denm denm;
  denm.header.station_id = id;
  denm.management.action_id = {id, seq};
  denm.management.detection_time = kSimEpochItsMs + 1000;
  denm.management.reference_time = kSimEpochItsMs + 1001;
  denm.management.event_position.latitude = 411780500;
  denm.management.event_position.longitude = -86079000;
  denm.management.validity_duration_s = 10;
  denm.management.station_type = StationType::RoadSideUnit;
  denm.situation = SituationContainer{
      .information_quality = 5,
      .event_type = EventType::of(Cause::CollisionRisk,
                                  static_cast<std::uint8_t>(CollisionRiskSubCause::CrossingCollisionRisk)),
  };
  return denm;
}

TEST(Timestamps, ItsEpochMapping) {
  EXPECT_EQ(to_timestamp_its(sim::SimTime::zero()), kSimEpochItsMs);
  EXPECT_EQ(to_timestamp_its(1500_ms), kSimEpochItsMs + 1500);
  EXPECT_EQ(from_timestamp_its(kSimEpochItsMs + 250), 250_ms);
  EXPECT_EQ(generation_delta_time(65536 + 42), 42);
}

TEST(Speed, FromMpsClampsAndRounds) {
  EXPECT_EQ(Speed::from_mps(1.234).value_cms, 123);
  EXPECT_EQ(Speed::from_mps(1000.0).value_cms, 16382);  // clamp below 'unavailable'
  EXPECT_EQ(Speed::from_mps(0.0).value_cms, 0);
  EXPECT_DOUBLE_EQ(Speed::from_mps(2.0).to_mps(), 2.0);
}

TEST(Cam, EncodeDecodeRoundTrip) {
  const Cam cam = make_cam(42);
  const auto bytes = cam.encode();
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(Cam::decode(bytes), cam);
}

TEST(Cam, RoundTripWithLowFrequencyContainer) {
  Cam cam = make_cam(7);
  LowFrequencyContainer lf;
  lf.exterior_lights = 0b10100000;
  lf.path_history.points = {{100, -50, 10}, {90, -45, 10}, {80, -40, 0}};
  cam.low_frequency = lf;
  EXPECT_EQ(Cam::decode(cam.encode()), cam);
}

TEST(Cam, DecodeRejectsWrongMessageType) {
  const Denm denm = make_denm(1, 1);
  EXPECT_THROW((void)Cam::decode(denm.encode()), asn1::DecodeError);
}

TEST(Cam, RandomizedRoundTripProperty) {
  sim::RandomStream r{20, "cam"};
  for (int i = 0; i < 200; ++i) {
    Cam cam;
    cam.header.station_id = static_cast<StationId>(r.uniform_int(0, 4294967295LL));
    cam.generation_delta_time = static_cast<std::uint16_t>(r.uniform_int(0, 65535));
    cam.basic.station_type = static_cast<StationType>(r.uniform_int(0, 15));
    cam.basic.reference_position.latitude = static_cast<std::int32_t>(r.uniform_int(-900000000, 900000001));
    cam.basic.reference_position.longitude =
        static_cast<std::int32_t>(r.uniform_int(-1800000000, 1800000001));
    cam.basic.reference_position.altitude.value_cm =
        static_cast<std::int32_t>(r.uniform_int(-100000, 800001));
    cam.high_frequency.heading.value_01deg = static_cast<std::uint16_t>(r.uniform_int(0, 3601));
    cam.high_frequency.heading.confidence_01deg = static_cast<std::uint8_t>(r.uniform_int(1, 127));
    cam.high_frequency.speed.value_cms = static_cast<std::uint16_t>(r.uniform_int(0, 16383));
    cam.high_frequency.drive_direction = static_cast<DriveDirection>(r.uniform_int(0, 2));
    cam.high_frequency.vehicle_length_dm = static_cast<std::uint16_t>(r.uniform_int(1, 1023));
    cam.high_frequency.vehicle_width_dm = static_cast<std::uint8_t>(r.uniform_int(1, 62));
    cam.high_frequency.longitudinal_accel_dms2 = static_cast<std::int16_t>(r.uniform_int(-160, 161));
    cam.high_frequency.curvature = static_cast<std::int32_t>(r.uniform_int(-1023, 1023));
    cam.high_frequency.yaw_rate_001degps = static_cast<std::int16_t>(r.uniform_int(-32766, 32767));
    if (r.bernoulli(0.5)) {
      LowFrequencyContainer lf;
      lf.exterior_lights = static_cast<std::uint8_t>(r.uniform_int(0, 255));
      const auto n = static_cast<std::size_t>(r.uniform_int(0, 40));
      for (std::size_t k = 0; k < n; ++k) {
        lf.path_history.points.push_back(
            {static_cast<std::int32_t>(r.uniform_int(-131072, 131071)),
             static_cast<std::int32_t>(r.uniform_int(-131072, 131071)),
             static_cast<std::int32_t>(r.uniform_int(0, 65535))});
      }
      cam.low_frequency = lf;
    }
    EXPECT_EQ(Cam::decode(cam.encode()), cam);
  }
}

TEST(Denm, MandatoryOnlyRoundTrip) {
  // The paper's testbed "used solely DENMs with the mandatory structure
  // (Header and Management Container)".
  Denm denm;
  denm.header.station_id = 900;
  denm.management.action_id = {900, 1};
  denm.management.detection_time = kSimEpochItsMs;
  denm.management.reference_time = kSimEpochItsMs;
  denm.management.station_type = StationType::RoadSideUnit;
  const Denm decoded = Denm::decode(denm.encode());
  EXPECT_EQ(decoded, denm);
  EXPECT_FALSE(decoded.situation.has_value());
  EXPECT_FALSE(decoded.location.has_value());
  EXPECT_FALSE(decoded.alacarte.has_value());
}

TEST(Denm, FullContainersRoundTrip) {
  Denm denm = make_denm(900, 3);
  denm.management.relevance_distance = RelevanceDistance::LessThan200m;
  denm.management.relevance_traffic_direction = RelevanceTrafficDirection::UpstreamTraffic;
  denm.management.transmission_interval_ms = 100;
  LocationContainer loc;
  loc.event_speed = Speed::from_mps(0.8);
  loc.event_position_heading = Heading{1800, 10};
  loc.traces.push_back(PathHistory{{{10, 10, 5}, {20, 20, 5}}});
  denm.location = loc;
  AlacarteContainer alc;
  alc.lane_position = 1;
  alc.external_temperature = 21;
  alc.stationary_vehicle = StationaryVehicleContainer{.stationary_since = 1, .number_of_occupants = 2};
  denm.alacarte = alc;
  EXPECT_EQ(Denm::decode(denm.encode()), denm);
}

TEST(Denm, TerminationFlagRoundTrips) {
  Denm denm = make_denm(900, 9);
  denm.management.termination = Termination::IsCancellation;
  const Denm decoded = Denm::decode(denm.encode());
  EXPECT_TRUE(decoded.is_termination());
  EXPECT_EQ(decoded.management.termination, Termination::IsCancellation);
}

TEST(Denm, LocationContainerRequiresTraces) {
  Denm denm = make_denm(900, 4);
  denm.location = LocationContainer{};  // no traces
  EXPECT_THROW((void)denm.encode(), std::invalid_argument);
}

TEST(Denm, EncodedSizeIsCompact) {
  // UPER-style encoding should keep a full DENM well under the 802.11p
  // payload budget; the mandatory-only DENM should be tens of bytes.
  Denm denm = make_denm(900, 1);
  EXPECT_LT(denm.encode().size(), 120u);
  Denm minimal;
  minimal.management.detection_time = kSimEpochItsMs;
  minimal.management.reference_time = kSimEpochItsMs;
  EXPECT_LT(minimal.encode().size(), 60u);
}

TEST(CauseCodes, PaperTable1Entries) {
  EXPECT_EQ(describe_cause(9), "Hazardous location - Surface condition");
  EXPECT_EQ(describe_cause(10), "Hazardous location - Obstacle on the road");
  EXPECT_EQ(describe_cause(97), "Collision risk");
  EXPECT_EQ(describe_cause(99), "Dangerous situation");
  EXPECT_EQ(describe_sub_cause(97, 1), "Longitudinal collision risk");
  EXPECT_EQ(describe_sub_cause(97, 2), "Crossing collision risk");
  EXPECT_EQ(describe_sub_cause(97, 4), "Collision risk involving vulnerable road-user");
  EXPECT_EQ(describe_sub_cause(99, 5), "AEB (Automatic Emergency Braking) activated");
  EXPECT_EQ(describe_sub_cause(99, 7), "Collision risk warning activated");
  // Paper §II-C: stationary vehicle subcauses 1=human problem, 2=breakdown.
  EXPECT_EQ(describe_sub_cause(94, 1), "Human problem");
  EXPECT_EQ(describe_sub_cause(94, 2), "Vehicle breakdown");
  EXPECT_EQ(describe_cause(200), "unknown");
  EXPECT_EQ(describe_sub_cause(97, 99), "unknown");
}

TEST(CauseCodes, RegistryIsConsistent) {
  for (const auto& e : cause_code_registry()) {
    EXPECT_EQ(describe_cause(e.cause_code), e.cause_description);
    EXPECT_EQ(describe_sub_cause(e.cause_code, e.sub_cause_code), e.sub_cause_description);
  }
}

TEST(EventType, RoundTrip) {
  asn1::PerEncoder e;
  EventType::of(Cause::DangerousSituation, 5).encode(e);
  asn1::PerDecoder d{e.finish()};
  const EventType back = EventType::decode(d);
  EXPECT_EQ(back.cause(), Cause::DangerousSituation);
  EXPECT_EQ(back.sub_cause_code, 5);
}

TEST(Btp, HeaderRoundTripAndPorts) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  BtpHeader header{.destination_port = kBtpPortDenm, .destination_port_info = 7};
  const auto pdu = header.prepend_to(payload);
  EXPECT_EQ(pdu.size(), payload.size() + BtpHeader::kSize);
  const auto parsed = BtpHeader::parse(pdu);
  EXPECT_EQ(parsed.header.destination_port, kBtpPortDenm);
  EXPECT_EQ(parsed.header.destination_port_info, 7);
  EXPECT_EQ(parsed.payload, payload);
  EXPECT_EQ(kBtpPortCam, 2001);
  EXPECT_EQ(kBtpPortDenm, 2002);
}

TEST(Btp, ParseRejectsTruncated) {
  EXPECT_THROW((void)BtpHeader::parse({1, 2}), asn1::DecodeError);
}

TEST(BtpMux, DispatchesByPort) {
  BtpMux mux;
  int cam_hits = 0;
  int custom_hits = 0;
  mux.register_port(kBtpPortCam, [&](const std::vector<std::uint8_t>& p, const GnDeliveryMeta&) {
    EXPECT_EQ(p, (std::vector<std::uint8_t>{1, 2}));
    ++cam_hits;
  });
  mux.register_port(3000,
                    [&](const std::vector<std::uint8_t>&, const GnDeliveryMeta&) { ++custom_hits; });
  EXPECT_TRUE(mux.has_port(3000));

  GnDeliveryMeta meta;
  mux.on_gn_payload(BtpHeader{kBtpPortCam, 0}.prepend_to({1, 2}), meta);
  mux.on_gn_payload(BtpHeader{3000, 0}.prepend_to({9}), meta);
  mux.on_gn_payload(BtpHeader{4000, 0}.prepend_to({9}), meta);  // unknown
  mux.on_gn_payload({0x01}, meta);                              // truncated
  EXPECT_EQ(cam_hits, 1);
  EXPECT_EQ(custom_hits, 1);
  EXPECT_EQ(mux.stats().dispatched, 2u);
  EXPECT_EQ(mux.stats().unknown_port, 1u);
  EXPECT_EQ(mux.stats().parse_errors, 1u);

  mux.unregister_port(3000);
  mux.on_gn_payload(BtpHeader{3000, 0}.prepend_to({9}), meta);
  EXPECT_EQ(custom_hits, 1);
  EXPECT_EQ(mux.stats().unknown_port, 2u);
}

TEST(GnPacket, ShbRoundTrip) {
  GnPacket pkt;
  pkt.type = GnPacketType::Shb;
  pkt.traffic_class = 2;
  pkt.remaining_hop_limit = 1;
  pkt.source.address = GnAddress::from_station(42);
  pkt.source.timestamp_ms = 123456;
  pkt.source.latitude = 411780000;
  pkt.source.longitude = -86080000;
  pkt.source.speed_cms = 120;
  pkt.source.heading_01deg = 900;
  pkt.forwarder = pkt.source;
  pkt.payload = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(GnPacket::decode(pkt.encode()), pkt);
}

TEST(GnPacket, GbcWithAreaRoundTrip) {
  GnPacket pkt;
  pkt.type = GnPacketType::Gbc;
  pkt.remaining_hop_limit = 10;
  pkt.sequence_number = 77;
  pkt.source.address = GnAddress::from_station(900);
  pkt.forwarder = pkt.source;
  pkt.destination_area = WireGeoArea{411780000, -86080000, 100, 50, 90, 2};
  pkt.payload = std::vector<std::uint8_t>(200, 0xab);
  const GnPacket back = GnPacket::decode(pkt.encode());
  EXPECT_EQ(back, pkt);
  ASSERT_TRUE(back.destination_area.has_value());
  EXPECT_EQ(back.destination_area->shape, 2);
}

}  // namespace
}  // namespace rst::its
