// Kitchen-sink integration: every optional subsystem enabled at once —
// GNSS positions, on-board LiDAR + AEB, anonymized detections with data
// association, DENM repetition, keep-alive forwarding on the OBU,
// shadowed channel with Nakagami-grade noise. The full chain must still
// stop the vehicle inside the budget across seeds.

#include <gtest/gtest.h>

#include "rst/core/testbed.hpp"

namespace rst::core {
namespace {

using namespace rst::sim::literals;

class KitchenSink : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KitchenSink, AllFeaturesCoexist) {
  TestbedConfig config;
  config.seed = 7000 + GetParam();
  config.use_gnss = true;
  config.enable_lidar_aeb = true;
  config.detection.anonymize_detections = true;
  config.hazard.denm_repetition = 60_ms;
  config.obu.den.enable_kaf = true;
  config.shadowing_sigma_db = 5.0;
  config.line_sensor.dropout_probability = 0.1;

  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial(20_s);
  ASSERT_TRUE(r.stopped_by_denm) << "seed " << config.seed;
  EXPECT_LT(r.meas_total_ms, 120.0);
  EXPECT_GT(r.braking_distance_m, 0.05);
  EXPECT_TRUE(scenario.dynamics().stopped());
  // GNSS and LiDAR actually ran.
  ASSERT_NE(scenario.gnss(), nullptr);
  EXPECT_GT(scenario.gnss()->fixes(), 10u);
  ASSERT_NE(scenario.lidar(), nullptr);
  EXPECT_GT(scenario.lidar()->scans_published(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KitchenSink, ::testing::Range<std::uint64_t>(0, 6));

TEST(KitchenSink, StatsAreInternallyConsistentAfterATrial) {
  TestbedConfig config;
  config.seed = 8088;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);

  // Radio-level conservation: the medium delivered at least as many frames
  // as the facilities consumed.
  const auto& medium = scenario.medium().stats();
  EXPECT_GE(medium.frames_transmitted, 1u);
  EXPECT_EQ(medium.frames_transmitted,
            scenario.obu().radio().stats().tx_frames + scenario.rsu().radio().stats().tx_frames);
  EXPECT_LE(scenario.rsu().ca().stats().cams_received, scenario.obu().ca().stats().cams_sent);
  EXPECT_GE(scenario.obu().den().stats().denms_received, 1u);
  EXPECT_GE(scenario.rsu().den().stats().denms_sent, 1u);
  // The BTP mux dispatched everything the facilities saw.
  EXPECT_EQ(scenario.obu().btp().stats().parse_errors, 0u);
  EXPECT_EQ(scenario.rsu().btp().stats().parse_errors, 0u);
}

}  // namespace
}  // namespace rst::core
