#include <gtest/gtest.h>

#include <cmath>

#include "rst/middleware/message_bus.hpp"
#include "rst/vehicle/control_module.hpp"
#include "rst/vehicle/lidar.hpp"
#include "rst/vehicle/motion_planner.hpp"

namespace rst::vehicle {
namespace {

using namespace rst::sim::literals;

struct Rig {
  sim::Scheduler sched;
  sim::RandomStream rng{404, "lidar_test"};
  middleware::MessageBus bus{sched, rng.child("bus")};
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  ScanningLidar lidar{sched, bus, dyn, rng.child("lidar")};

  Rig() { dyn.reset({0, 0}, 0.0); }
};

TEST(Lidar, DetectsTargetInRangeWithCorrectGeometry) {
  Rig rig;
  rig.lidar.add_target({[] { return geo::Vec2{0, 5}; }, 0.15});
  const LidarScan scan = rig.lidar.scan();
  ASSERT_EQ(scan.detections.size(), 1u);
  EXPECT_NEAR(scan.detections[0].range_m, 5.0 - 0.15, 0.05);
  EXPECT_NEAR(scan.detections[0].bearing_rad, 0.0, 1e-6);
}

TEST(Lidar, BearingFollowsVehicleHeading) {
  Rig rig;
  rig.dyn.reset({0, 0}, M_PI / 2);  // facing east
  rig.lidar.add_target({[] { return geo::Vec2{0, 5}; }, 0.15});  // due north
  const LidarScan scan = rig.lidar.scan();
  ASSERT_EQ(scan.detections.size(), 1u);
  EXPECT_NEAR(scan.detections[0].bearing_rad, -M_PI / 2, 1e-6);  // 90 deg left
}

TEST(Lidar, RespectsRangeAndFov) {
  Rig rig;
  rig.lidar.add_target({[] { return geo::Vec2{0, 20}; }, 0.15});   // beyond 8 m
  rig.lidar.add_target({[] { return geo::Vec2{0, -3}; }, 0.15});   // directly behind
  EXPECT_TRUE(rig.lidar.scan().detections.empty());
}

TEST(Lidar, WallsOccludeTargets) {
  Rig rig;
  rig.lidar.add_target({[] { return geo::Vec2{0, 5}; }, 0.15});
  rig.lidar.set_walls({{.a = {-1, 3}, .b = {1, 3}, .obstruction_loss_db = 20}});
  EXPECT_TRUE(rig.lidar.scan().detections.empty());
  // Wall moved aside: visible again.
  rig.lidar.set_walls({{.a = {2, 3}, .b = {4, 3}, .obstruction_loss_db = 20}});
  EXPECT_EQ(rig.lidar.scan().detections.size(), 1u);
}

TEST(Lidar, PeriodicScansPublishOnBus) {
  Rig rig;
  rig.lidar.add_target({[] { return geo::Vec2{0, 4}; }, 0.15});
  int scans = 0;
  rig.bus.subscribe_to<LidarScan>("lidar_scan", [&](const LidarScan& s) {
    if (!s.detections.empty()) ++scans;
  });
  rig.lidar.start();
  rig.sched.run_until(1050_ms);
  EXPECT_GE(scans, 9);
  EXPECT_LE(scans, 11);
  rig.lidar.stop();
}

struct AebRig : Rig {
  MotionPlanner planner{sched, bus};
  ControlModule control{sched, bus, dyn, rng.child("ctl")};
  AebController aeb{sched, bus, {}, nullptr, "aeb"};
};

TEST(Aeb, StopsBeforeStationaryObstacle) {
  AebRig rig;
  rig.lidar.add_target({[] { return geo::Vec2{0, 6}; }, 0.15});
  rig.dyn.reset({0, 0}, 0.0, 1.2);
  rig.dyn.set_throttle(0.05);  // roughly hold cruise against rolling drag
  rig.dyn.start();
  rig.control.start();
  rig.lidar.start();
  rig.aeb.start();
  rig.sched.run_until(10_s);
  EXPECT_TRUE(rig.aeb.triggered());
  EXPECT_TRUE(rig.dyn.stopped());
  // Stopped short of the obstacle disc.
  EXPECT_LT(rig.dyn.position().y, 6.0 - 0.15);
  EXPECT_GT(rig.dyn.position().y, 3.0);  // but did not stop absurdly early
}

TEST(Aeb, IgnoresObstaclesOutsideTheCorridor) {
  AebRig rig;
  rig.lidar.add_target({[] { return geo::Vec2{1.5, 4}; }, 0.15});  // 1.5 m to the side
  rig.dyn.reset({0, 0}, 0.0, 1.2);
  rig.dyn.start();
  rig.control.start();
  rig.lidar.start();
  rig.aeb.start();
  rig.sched.run_until(3_s);
  EXPECT_FALSE(rig.aeb.triggered());
  EXPECT_FALSE(rig.dyn.power_cut());
  EXPECT_GT(rig.aeb.scans_evaluated(), 10u);
}

TEST(Aeb, DoesNothingWhenStopped) {
  AebRig rig;
  rig.lidar.add_target({[] { return geo::Vec2{0, 0.5}; }, 0.15});
  rig.dyn.reset({0, 0}, 0.0, 0.0);  // parked right behind an obstacle
  rig.dyn.start();
  rig.control.start();
  rig.lidar.start();
  rig.aeb.start();
  rig.sched.run_until(2_s);
  // Speed 0 -> stopping envelope is just the margin; obstacle at 0.35 m
  // equals the margin boundary, so the trigger depends only on the margin.
  // Either way the vehicle must remain stationary and safe.
  EXPECT_TRUE(rig.dyn.stopped());
}

}  // namespace
}  // namespace rst::vehicle
