// Counts heap allocations to prove the spatial medium's steady-state
// transmit path — grid query, cached link budget, pooled transmission
// record, per-receiver interference accumulators — is allocation-free
// once the pools and bins have reached their high-water capacity.
//
// Like scheduler_alloc_test, this overrides the global operator
// new/delete and therefore lives in its own binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace rst::dot11p {
namespace {

class CountScope {
 public:
  CountScope() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountScope() { g_counting.store(false, std::memory_order_relaxed); }
  [[nodiscard]] std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(MediumAlloc, SpatialTransmitPathIsAllocationFreeInSteadyState) {
  sim::Scheduler sched;
  sim::RandomStream rng{2024, "medium_alloc"};
  ChannelModel channel;
  channel.path_loss = std::make_shared<LogDistanceModel>(LogDistanceModel::its_g5(2.8));
  channel.shadowing_sigma_db = 3.0;
  channel.spatial_index = true;
  channel.power_floor_dbm = -95.0;
  Medium medium{sched, rng.child("medium"), channel};

  // A 6x6 lattice at 150 m pitch: each station hears a neighbourhood, not
  // the whole fleet, so the grid query and the floor cull both exercise.
  std::vector<std::unique_ptr<Radio>> radios;
  for (int gy = 0; gy < 6; ++gy) {
    for (int gx = 0; gx < 6; ++gx) {
      const geo::Vec2 pos{gx * 150.0, gy * 150.0};
      const auto idx = radios.size();
      radios.push_back(std::make_unique<Radio>(
          medium, RadioConfig{}, [pos] { return pos; },
          rng.child("radio" + std::to_string(idx)), "radio" + std::to_string(idx)));
    }
  }

  // The steady-state workload bypasses the MAC queue (Radio::send copies a
  // payload by design) and drives the medium directly with header-only
  // frames, the way the MAC hands them over after channel access.
  const auto beacon_round = [&] {
    for (std::size_t i = 0; i < radios.size(); ++i) {
      const auto at = sim::SimTime::microseconds(static_cast<std::int64_t>(1 + i * 700));
      sched.post_in(at, [&medium, &radios, i] {
        Frame f;
        f.ac = AccessCategory::BestEffort;
        medium.begin_transmission(radios[i].get(), std::move(f), 300);
      });
    }
    sched.run();
  };

  // Warm-up: pools, grid bins, budget cache, per-slot active lists and the
  // scheduler's event heap all reach their working-set capacity.
  for (int round = 0; round < 4; ++round) beacon_round();
  ASSERT_GT(medium.stats().budget_cache_hits, 0u);
  ASSERT_GT(medium.stats().culled_below_floor, 0u);

  {
    CountScope scope;
    for (int round = 0; round < 8; ++round) beacon_round();
    EXPECT_EQ(scope.count(), 0u)
        << "spatial transmit path allocated in steady state";
  }
  EXPECT_GT(medium.stats().deliveries, 0u);
}

}  // namespace
}  // namespace rst::dot11p
