// Property: with per-link streams, enabling the spatial index must not
// change any observable outcome. The grid may only skip links whose
// deterministic budget is already below the power floor — links the
// full fan-out drops anyway — so delivery logs (including the exact RSSI
// and SINR bits) and medium statistics must match between the two modes
// on any topology, static or moving.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::dot11p {
namespace {

using namespace rst::sim::literals;

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

struct RxRecord {
  std::uint64_t rx_time_ns;
  std::uint64_t src_mac;
  std::uint64_t rssi_bits;
  std::uint64_t sinr_bits;
  std::size_t payload_size;

  friend bool operator==(const RxRecord&, const RxRecord&) = default;
};

struct Topology {
  struct Node {
    geo::Vec2 start;
    geo::Vec2 velocity;  // zero for static nodes
  };
  std::vector<Node> nodes;
  struct Send {
    std::size_t node;
    sim::SimTime at;
    std::size_t payload;
  };
  std::vector<Send> sends;
  double power_floor_dbm;
  double path_loss_exponent;
  double shadowing_sigma_db;
};

/// Topology draws happen outside the scenario so both runs consume
/// identical randomness. Roughly half the area spans well beyond the cull
/// radius implied by the floor, so the grid genuinely skips links.
Topology make_topology(std::uint64_t seed) {
  sim::RandomStream rng{seed, "equiv_topo"};
  Topology topo;
  topo.power_floor_dbm = rng.bernoulli(0.5) ? -80.0 : -95.0;
  topo.path_loss_exponent = rng.uniform(2.0, 3.2);
  topo.shadowing_sigma_db = rng.uniform(0.0, 4.0);
  const double extent = rng.bernoulli(0.5) ? 150.0 : 2500.0;
  const auto n = static_cast<std::size_t>(rng.uniform_int(4, 12));
  for (std::size_t i = 0; i < n; ++i) {
    Topology::Node node;
    node.start = {rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
    if (rng.bernoulli(0.4)) {
      node.velocity = {rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)};
    }
    topo.nodes.push_back(node);
    const auto frames = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t f = 0; f < frames; ++f) {
      topo.sends.push_back({i, sim::SimTime::microseconds(rng.uniform_int(0, 80000)),
                            static_cast<std::size_t>(rng.uniform_int(40, 400))});
    }
  }
  return topo;
}

struct RunResult {
  std::vector<std::vector<RxRecord>> logs;
  Medium::Stats stats;
};

RunResult run_scenario(const Topology& topo, std::uint64_t seed, bool spatial) {
  sim::Scheduler sched;
  sim::RandomStream rng{seed, "equiv_run"};

  ChannelModel channel;
  channel.path_loss =
      std::make_shared<LogDistanceModel>(LogDistanceModel::its_g5(topo.path_loss_exponent));
  channel.shadowing_sigma_db = topo.shadowing_sigma_db;
  channel.per_link_streams = true;
  channel.spatial_index = spatial;
  channel.power_floor_dbm = topo.power_floor_dbm;
  Medium medium{sched, rng.child("medium"), channel};

  // Moving nodes follow a fixed 10 ms kinematic tick for 100 ms; the
  // positions vector is shared with the radios' position providers.
  auto positions = std::make_shared<std::vector<geo::Vec2>>();
  for (const auto& node : topo.nodes) positions->push_back(node.start);
  for (int tick = 1; tick <= 10; ++tick) {
    sched.post_at(sim::SimTime::milliseconds(10) * tick, [&topo, positions] {
      for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
        (*positions)[i] += topo.nodes[i].velocity * 0.010;
      }
    });
  }

  RunResult result;
  result.logs.resize(topo.nodes.size());
  std::vector<std::unique_ptr<Radio>> radios;
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    radios.push_back(std::make_unique<Radio>(
        medium, RadioConfig{}, [positions, i] { return (*positions)[i]; },
        rng.child("radio" + std::to_string(i)), "radio" + std::to_string(i)));
    radios.back()->set_receive_callback([&result, i](const Frame& f, const RxInfo& info) {
      result.logs[i].push_back(RxRecord{static_cast<std::uint64_t>(info.rx_time.count_ns()),
                                        info.src_mac, bits(info.rssi_dbm), bits(info.sinr_db),
                                        f.payload.size()});
    });
  }

  for (const auto& send : topo.sends) {
    sched.post_at(send.at, [&radios, &send] {
      Frame f;
      f.payload.assign(send.payload, 0xC5);
      f.ac = AccessCategory::Video;
      radios[send.node]->send(f);
    });
  }

  sched.run();
  result.stats = medium.stats();
  return result;
}

TEST(MediumEquivalence, SpatialIndexNeverChangesOutcomes) {
  int topologies_with_culling = 0;
  for (std::uint64_t seed = 1; seed <= 220; ++seed) {
    const Topology topo = make_topology(seed);
    const RunResult off = run_scenario(topo, seed, /*spatial=*/false);
    const RunResult on = run_scenario(topo, seed, /*spatial=*/true);

    ASSERT_EQ(off.logs, on.logs) << "delivery logs diverged at seed " << seed;
    EXPECT_EQ(off.stats.frames_transmitted, on.stats.frames_transmitted) << seed;
    EXPECT_EQ(off.stats.deliveries, on.stats.deliveries) << seed;
    EXPECT_EQ(off.stats.dropped_half_duplex, on.stats.dropped_half_duplex) << seed;
    EXPECT_EQ(off.stats.dropped_below_sensitivity, on.stats.dropped_below_sensitivity) << seed;
    EXPECT_EQ(off.stats.dropped_error, on.stats.dropped_error) << seed;
    // Floor culling is a property of the link budget, not of the index:
    // both modes must agree on how many links never cleared the floor.
    EXPECT_EQ(off.stats.culled_below_floor, on.stats.culled_below_floor) << seed;
    // Cache counters are deliberately excluded: the grid evaluates fewer
    // budgets, so hit/miss totals legitimately differ between modes.
    if (on.stats.culled_below_floor > 0) ++topologies_with_culling;
  }
  // The property is vacuous if no topology ever culled a link.
  EXPECT_GT(topologies_with_culling, 50);
}

class MediumDetach : public ::testing::TestWithParam<bool> {};

TEST_P(MediumDetach, MidFlightDetachSettlesCarrierSenseAndKeepsDelivering) {
  // A transmits; while the frame is in the air, B detaches. B's
  // carrier-sense busy count must settle to idle (no leaked +1), the
  // finish event must not touch B, and C must still receive.
  sim::Scheduler sched;
  sim::RandomStream rng{42, "detach_test"};
  ChannelModel channel;
  channel.path_loss = std::make_shared<LogDistanceModel>(LogDistanceModel::its_g5(2.0));
  channel.shadowing_sigma_db = 0.0;
  channel.per_link_streams = GetParam();
  channel.spatial_index = GetParam();
  Medium medium{sched, rng.child("medium"), channel};

  auto make = [&](const char* name, geo::Vec2 pos) {
    return std::make_unique<Radio>(
        medium, RadioConfig{}, [pos] { return pos; }, rng.child(name), name);
  };
  auto a = make("a", {0, 0});
  auto b = make("b", {10, 0});
  auto c = make("c", {0, 10});
  int c_rx = 0;
  c->set_receive_callback([&](const Frame&, const RxInfo&) { ++c_rx; });

  sched.post_at(1_ms, [&] {
    Frame f;
    f.payload.assign(200, 0x11);
    f.ac = AccessCategory::Video;
    a->send(f);
  });
  // Mid-airtime (a 200-byte QPSK frame flies for ~300 us): destroy B.
  sched.post_at(1_ms + 50_us, [&] {
    EXPECT_GT(b->cumulative_busy_time(), sim::SimTime::zero());
    b.reset();
  });
  sched.run();

  EXPECT_EQ(c_rx, 1);
  EXPECT_EQ(medium.stats().frames_transmitted, 1u);
  EXPECT_EQ(medium.stats().deliveries, 1u);  // only C: B vanished mid-flight
}

TEST_P(MediumDetach, TransmitterDetachMidFlightStillPropagates) {
  // The sender's radio is destroyed while its own frame is in the air: the
  // frame still arrives (the energy left the antenna) and the finish event
  // must not call back into the dead transmitter.
  sim::Scheduler sched;
  sim::RandomStream rng{43, "detach_tx_test"};
  ChannelModel channel;
  channel.path_loss = std::make_shared<LogDistanceModel>(LogDistanceModel::its_g5(2.0));
  channel.shadowing_sigma_db = 0.0;
  channel.per_link_streams = GetParam();
  channel.spatial_index = GetParam();
  Medium medium{sched, rng.child("medium"), channel};

  auto make = [&](const char* name, geo::Vec2 pos) {
    return std::make_unique<Radio>(
        medium, RadioConfig{}, [pos] { return pos; }, rng.child(name), name);
  };
  auto a = make("a", {0, 0});
  auto b = make("b", {10, 0});
  int b_rx = 0;
  b->set_receive_callback([&](const Frame&, const RxInfo&) { ++b_rx; });

  sched.post_at(1_ms, [&] {
    Frame f;
    f.payload.assign(200, 0x22);
    f.ac = AccessCategory::Video;
    a->send(f);
  });
  sched.post_at(1_ms + 50_us, [&] { a.reset(); });
  sched.run();

  EXPECT_EQ(b_rx, 1);
  EXPECT_EQ(medium.stats().deliveries, 1u);
}

INSTANTIATE_TEST_SUITE_P(LegacyAndSpatial, MediumDetach, ::testing::Bool());

}  // namespace
}  // namespace rst::dot11p
