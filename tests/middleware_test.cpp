#include <gtest/gtest.h>

#include "rst/middleware/http.hpp"
#include "rst/middleware/kv.hpp"
#include "rst/middleware/message_bus.hpp"
#include "rst/middleware/ntp.hpp"

namespace rst::middleware {
namespace {

using namespace rst::sim::literals;

TEST(MessageBus, DeliversAfterLatency) {
  sim::Scheduler sched;
  MessageBus bus{sched, sim::RandomStream{1, "bus"}};
  int value = 0;
  sim::SimTime delivered_at;
  bus.subscribe_to<int>("topic", [&](const int& v) {
    value = v;
    delivered_at = sched.now();
  });
  bus.publish("topic", 42);
  EXPECT_EQ(value, 0);  // asynchronous
  sched.run();
  EXPECT_EQ(value, 42);
  EXPECT_GT(delivered_at, sim::SimTime::zero());
  EXPECT_LT(delivered_at, 2_ms);
}

TEST(MessageBus, MultipleSubscribersEachGetACopy) {
  sim::Scheduler sched;
  MessageBus bus{sched, sim::RandomStream{2, "bus"}};
  int count = 0;
  bus.subscribe_to<std::string>("t", [&](const std::string& s) { count += s == "x"; });
  bus.subscribe_to<std::string>("t", [&](const std::string& s) { count += s == "x"; });
  bus.publish("t", std::string{"x"});
  sched.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(bus.subscriber_count("t"), 2u);
}

TEST(MessageBus, TypeMismatchIsIgnored) {
  sim::Scheduler sched;
  MessageBus bus{sched, sim::RandomStream{3, "bus"}};
  int calls = 0;
  bus.subscribe_to<int>("t", [&](const int&) { ++calls; });
  bus.publish("t", std::string{"not an int"});
  sched.run();
  EXPECT_EQ(calls, 0);
}

TEST(MessageBus, UnsubscribeStopsDelivery) {
  sim::Scheduler sched;
  MessageBus bus{sched, sim::RandomStream{4, "bus"}};
  int calls = 0;
  const auto id = bus.subscribe("t", [&](const std::any&) { ++calls; });
  bus.publish("t", 1);
  sched.run();
  bus.unsubscribe("t", id);
  bus.publish("t", 2);
  sched.run();
  EXPECT_EQ(calls, 1);
}

TEST(MessageBus, NoSubscribersIsFine) {
  sim::Scheduler sched;
  MessageBus bus{sched, sim::RandomStream{5, "bus"}};
  bus.publish("nobody", 7);
  sched.run();
  EXPECT_EQ(bus.published_count(), 1u);
}

TEST(Http, RequestResponseRoundTrip) {
  sim::Scheduler sched;
  HttpLan lan{sched, sim::RandomStream{6, "lan"}};
  HttpHost server{lan, "obu"};
  HttpHost client{lan, "jetson"};
  server.handle("/request_denm", [](const HttpRequest& req) {
    EXPECT_EQ(req.method, "POST");
    return HttpResponse{200, "payload:" + req.body};
  });
  int status = 0;
  std::string body;
  sim::SimTime responded_at;
  client.post("obu", "/request_denm", "hello", [&](const HttpResponse& r) {
    status = r.status;
    body = r.body;
    responded_at = sched.now();
  });
  sched.run();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "payload:hello");
  // Two legs + processing: sub-ms to a few ms on the LAN.
  EXPECT_GT(responded_at, 500_us);
  EXPECT_LT(responded_at, 5_ms);
}

TEST(Http, UnknownHostGives404) {
  sim::Scheduler sched;
  HttpLan lan{sched, sim::RandomStream{7, "lan"}};
  HttpHost client{lan, "jetson"};
  int status = -1;
  client.post("ghost", "/x", "", [&](const HttpResponse& r) { status = r.status; });
  sched.run();
  EXPECT_EQ(status, 404);
}

TEST(Http, UnknownPathGives404) {
  sim::Scheduler sched;
  HttpLan lan{sched, sim::RandomStream{8, "lan"}};
  HttpHost server{lan, "obu"};
  HttpHost client{lan, "jetson"};
  int status = -1;
  client.post("obu", "/nope", "", [&](const HttpResponse& r) { status = r.status; });
  sched.run();
  EXPECT_EQ(status, 404);
}

TEST(Http, LossyLanTimesOutWithStatusZero) {
  sim::Scheduler sched;
  HttpLanConfig config;
  config.loss_probability = 1.0;
  config.loss_timeout = 50_ms;
  HttpLan lan{sched, sim::RandomStream{9, "lan"}, config};
  HttpHost server{lan, "obu"};
  HttpHost client{lan, "jetson"};
  server.handle("/x", [](const HttpRequest&) { return HttpResponse{200, {}}; });
  int status = -1;
  client.post("obu", "/x", "", [&](const HttpResponse& r) { status = r.status; });
  sched.run();
  EXPECT_EQ(status, 0);
  EXPECT_EQ(sched.now(), 50_ms);
}

TEST(Http, HostDetachOnDestruction) {
  sim::Scheduler sched;
  HttpLan lan{sched, sim::RandomStream{10, "lan"}};
  HttpHost client{lan, "jetson"};
  int status = -1;
  {
    HttpHost server{lan, "obu"};
    server.handle("/x", [](const HttpRequest&) { return HttpResponse{200, {}}; });
  }
  client.post("obu", "/x", "", [&](const HttpResponse& r) { status = r.status; });
  sched.run();
  EXPECT_EQ(status, 404);
}

TEST(Kv, ParseSerializeRoundTrip) {
  KvBody kv;
  kv.set("denm", "deadbeef");
  kv.set_int("cause", 97);
  kv.set_double("x", 1.52);
  const KvBody parsed = KvBody::parse(kv.serialize());
  EXPECT_EQ(parsed.get("denm"), "deadbeef");
  EXPECT_EQ(parsed.get_int("cause"), 97);
  EXPECT_NEAR(*parsed.get_double("x"), 1.52, 1e-9);
  EXPECT_FALSE(parsed.get("missing").has_value());
}

TEST(Kv, MalformedFragmentsSkipped) {
  const KvBody kv = KvBody::parse("a=1;;garbage;=nokey;b=2;");
  EXPECT_EQ(kv.get_int("a"), 1);
  EXPECT_EQ(kv.get_int("b"), 2);
  EXPECT_FALSE(kv.get("garbage").has_value());
}

TEST(Kv, NonNumericValuesReturnNullopt) {
  const KvBody kv = KvBody::parse("a=xyz");
  EXPECT_FALSE(kv.get_int("a").has_value());
  EXPECT_FALSE(kv.get_double("a").has_value());
  EXPECT_EQ(kv.get("a"), "xyz");
}

TEST(Hex, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> data{0x00, 0xff, 0xde, 0xad, 0x12};
  EXPECT_EQ(hex_encode(data), "00ffdead12");
  EXPECT_EQ(hex_decode("00ffdead12"), data);
  EXPECT_EQ(hex_decode("00FFDEAD12"), data);  // uppercase accepted
  EXPECT_THROW((void)hex_decode("abc"), std::invalid_argument);
  EXPECT_THROW((void)hex_decode("zz"), std::invalid_argument);
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Ntp, UndisciplinedClockDrifts) {
  sim::Scheduler sched;
  NtpClockConfig config;
  config.enable_sync = false;
  config.drift_ppm = 100.0;
  config.initial_offset = 1_ms;
  NtpClock clock{sched, sim::RandomStream{11, "ntp"}, "node", config};
  EXPECT_EQ(clock.offset(), 1_ms);
  sched.run_until(100_s);
  // 100 ppm over 100 s = 10 ms drift on top of the initial 1 ms.
  EXPECT_NEAR(clock.offset().to_milliseconds(), 11.0, 0.01);
  EXPECT_EQ(clock.now_wall() - sched.now(), clock.offset());
}

TEST(Ntp, SyncBoundsTheOffset) {
  sim::Scheduler sched;
  NtpClockConfig config;
  config.drift_ppm = 50.0;
  config.initial_offset = 500_ms;
  config.sync_interval = 4_s;
  config.sync_error_sigma = 300_us;
  NtpClock clock{sched, sim::RandomStream{12, "ntp"}, "node", config};
  sched.run_until(60_s);
  EXPECT_GE(clock.sync_count(), 10u);
  // After discipline, the offset stays within a few ms (drift between syncs
  // is 50 ppm * ~4.5 s ~ 0.23 ms, residual sigma 0.3 ms).
  EXPECT_LT(std::abs(clock.offset().to_milliseconds()), 3.0);
}

TEST(Ntp, TwoClocksDisagreeSlightly) {
  sim::Scheduler sched;
  NtpClock a{sched, sim::RandomStream{13, "ntp"}, "a", {}};
  NtpClock b{sched, sim::RandomStream{14, "ntp"}, "b", {}};
  sched.run_until(60_s);
  const double delta = std::abs((a.now_wall() - b.now_wall()).to_milliseconds());
  EXPECT_GT(delta, 0.0);  // never perfectly aligned
  EXPECT_LT(delta, 5.0);  // but NTP keeps them close (paper's assumption)
}

}  // namespace
}  // namespace rst::middleware
