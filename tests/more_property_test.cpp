// Second parameterized property-sweep batch: NTP discipline across drift
// magnitudes, DCC gate spacing across load states, wire round-trips of the
// GeoNetworking area encoding, KAF behaviour across validity spans, and
// RunningStats::merge over random sample partitions (guards the parallel
// trial aggregation path).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rst/its/dcc/reactive_dcc.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/middleware/ntp.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/stats.hpp"

namespace rst {
namespace {

using namespace rst::sim::literals;

// ------------------------------------------------------------------- NTP

class NtpDriftProperty : public ::testing::TestWithParam<double> {};

TEST_P(NtpDriftProperty, DisciplineBoundsOffsetForAnyDrift) {
  sim::Scheduler sched;
  middleware::NtpClockConfig config;
  config.drift_ppm = GetParam();
  config.initial_offset = 200_ms;
  config.sync_interval = 4_s;
  config.sync_error_sigma = 300_us;
  middleware::NtpClock clock{sched, sim::RandomStream{33, "ntp_prop"}, "node", config};
  sched.run_until(120_s);
  // Offset bounded by residual sigma + drift accumulated over one interval.
  const double bound_ms = 0.3 * 6 + GetParam() * 1e-6 * 5.0 * 1e3;
  EXPECT_LT(std::abs(clock.offset().to_milliseconds()), bound_ms + 0.5);
  EXPECT_GE(clock.sync_count(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Drifts, NtpDriftProperty, ::testing::Values(0.0, 1.0, 5.0, 20.0, 100.0));

// ------------------------------------------------------------------- DCC

struct DccCase {
  double cbr;
  its::dcc::DccState expected_state;
};

class DccGateProperty : public ::testing::TestWithParam<DccCase> {};

TEST_P(DccGateProperty, GateSpacingMatchesState) {
  const auto& param = GetParam();
  sim::Scheduler sched;
  sim::RandomStream rng{44, "dcc_prop"};
  dot11p::ChannelModel channel;
  channel.path_loss =
      std::make_shared<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.0));
  dot11p::Medium medium{sched, rng.child("m"), channel};
  dot11p::Radio tx{medium, {}, [] { return geo::Vec2{0, 0}; }, rng.child("tx"), "tx"};
  dot11p::Radio rx{medium, {}, [] { return geo::Vec2{20, 0}; }, rng.child("rx"), "rx"};
  std::vector<sim::SimTime> rx_times;
  rx.set_receive_callback([&](const dot11p::Frame&, const dot11p::RxInfo& info) {
    rx_times.push_back(info.rx_time);
  });
  its::dcc::ChannelProbe probe{sched, tx};
  its::dcc::ReactiveDccConfig dcc_config;
  // Disable queue-lifetime expiry so the sweep observes pure gate spacing.
  dcc_config.queued_packet_lifetime = 60_s;
  its::dcc::ReactiveDcc dcc{sched, tx, probe, dcc_config};
  dcc.on_channel_load(param.cbr);
  ASSERT_EQ(dcc.state(), param.expected_state);
  const auto min_gap = dcc.current_min_gap();

  for (int i = 0; i < 6; ++i) {
    dot11p::Frame f;
    f.payload.assign(100, 0x11);
    f.ac = dot11p::AccessCategory::Video;
    dcc.send(std::move(f));
  }
  sched.run_until(10_s);
  ASSERT_EQ(rx_times.size(), 6u);
  for (std::size_t i = 1; i < rx_times.size(); ++i) {
    EXPECT_GE(rx_times[i] - rx_times[i - 1], min_gap - 1_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Loads, DccGateProperty,
    ::testing::Values(DccCase{0.05, its::dcc::DccState::Relaxed},
                      DccCase{0.33, its::dcc::DccState::Active1},
                      DccCase{0.45, its::dcc::DccState::Active2},
                      DccCase{0.55, its::dcc::DccState::Active3},
                      DccCase{0.80, its::dcc::DccState::Restrictive}));

// ----------------------------------------------------------- GN wire area

class WireAreaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireAreaProperty, RandomAreasRoundTrip) {
  sim::RandomStream r{GetParam(), "wire_area"};
  for (int i = 0; i < 100; ++i) {
    its::WireGeoArea area;
    area.center_latitude = static_cast<std::int32_t>(r.uniform_int(-900000000, 900000001));
    area.center_longitude = static_cast<std::int32_t>(r.uniform_int(-1800000000, 1800000001));
    area.distance_a_m = static_cast<std::uint16_t>(r.uniform_int(0, 65535));
    area.distance_b_m = static_cast<std::uint16_t>(r.uniform_int(0, 65535));
    area.angle_deg = static_cast<std::uint16_t>(r.uniform_int(0, 360));
    area.shape = static_cast<std::uint8_t>(r.uniform_int(0, 2));
    asn1::PerEncoder e;
    area.encode(e);
    asn1::PerDecoder d{e.finish()};
    EXPECT_EQ(its::WireGeoArea::decode(d), area);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireAreaProperty, ::testing::Range<std::uint64_t>(1, 6));

// ------------------------------------------------------------- LPV wire

class LpvProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpvProperty, RandomPositionVectorsRoundTrip) {
  sim::RandomStream r{GetParam(), "lpv"};
  for (int i = 0; i < 100; ++i) {
    its::LongPositionVector pv;
    pv.address.value = static_cast<std::uint64_t>(r.uniform_int(0, (1LL << 62)));
    pv.timestamp_ms = static_cast<std::uint32_t>(r.uniform_int(0, 4294967295LL));
    pv.latitude = static_cast<std::int32_t>(r.uniform_int(-900000000, 900000001));
    pv.longitude = static_cast<std::int32_t>(r.uniform_int(-1800000000, 1800000001));
    pv.position_accurate = r.bernoulli(0.5);
    pv.speed_cms = static_cast<std::int16_t>(r.uniform_int(-32768, 32767));
    pv.heading_01deg = static_cast<std::uint16_t>(r.uniform_int(0, 3601));
    asn1::PerEncoder e;
    pv.encode(e);
    asn1::PerDecoder d{e.finish()};
    EXPECT_EQ(its::LongPositionVector::decode(d), pv);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpvProperty, ::testing::Range<std::uint64_t>(1, 6));

// --------------------------------------------------------- stats merging

// Guards the parallel trial aggregation: however a sample vector is split
// into per-worker partitions, merging the partition accumulators must match
// the single-pass serial accumulation.
class StatsMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsMergeProperty, MergeOverRandomPartitionsMatchesSinglePass) {
  sim::RandomStream r{GetParam(), "stats_merge"};
  for (int round = 0; round < 20; ++round) {
    const auto n = static_cast<std::size_t>(r.uniform_int(1, 400));
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix scales and signs so Welford cancellation errors would surface.
      samples.push_back(r.normal(r.uniform(-50.0, 50.0), r.uniform(0.1, 30.0)));
    }

    sim::RunningStats serial;
    for (double x : samples) serial.add(x);

    // Split into a random number of contiguous partitions (some may stay
    // empty — merging an empty accumulator must be a no-op).
    const auto partitions = static_cast<std::size_t>(r.uniform_int(1, 12));
    std::vector<sim::RunningStats> parts(partitions);
    for (double x : samples) {
      parts[static_cast<std::size_t>(r.uniform_int(0, static_cast<std::int64_t>(partitions) - 1))]
          .add(x);
    }
    sim::RunningStats merged;
    for (const auto& part : parts) merged.merge(part);

    ASSERT_EQ(merged.count(), serial.count());
    EXPECT_NEAR(merged.mean(), serial.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), serial.variance(), 1e-9);
    EXPECT_NEAR(merged.population_variance(), serial.population_variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), serial.min());
    EXPECT_DOUBLE_EQ(merged.max(), serial.max());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsMergeProperty, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rst
