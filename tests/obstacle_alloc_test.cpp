// Counts heap allocations to prove the indexed obstacle query path —
// supercover cell walk, CSR bin lookups, per-thread candidate scratch,
// dedup and the exact intersection test — is allocation-free once the
// querying thread's scratch has reached its high-water capacity.
//
// Like medium_alloc_test, this overrides the global operator new/delete
// and therefore lives in its own binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "rst/dot11p/channel.hpp"
#include "rst/geo/obstacle_grid.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace rst::dot11p {
namespace {

class CountScope {
 public:
  CountScope() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountScope() { g_counting.store(false, std::memory_order_relaxed); }
  [[nodiscard]] std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(ObstacleAlloc, IndexedQueryPathIsAllocationFreeInSteadyState) {
  // A 16x16 building grid, four walls each: 1024 walls, dense enough that
  // long diagonal rays collect candidates from dozens of cells.
  std::vector<Wall> walls;
  for (int by = 0; by < 16; ++by) {
    for (int bx = 0; bx < 16; ++bx) {
      const double x0 = bx * 100.0 + 20.0;
      const double y0 = by * 100.0 + 20.0;
      const double x1 = x0 + 60.0;
      const double y1 = y0 + 60.0;
      walls.push_back({{x0, y0}, {x1, y0}, 12.0});
      walls.push_back({{x1, y0}, {x1, y1}, 12.0});
      walls.push_back({{x1, y1}, {x0, y1}, 12.0});
      walls.push_back({{x0, y1}, {x0, y0}, 12.0});
    }
  }
  auto base = std::make_unique<LogDistanceModel>(LogDistanceModel::its_g5(2.8));
  const ObstacleShadowingModel model{std::move(base), std::move(walls), /*use_index=*/true};
  ASSERT_TRUE(model.index_enabled());

  // The query mix, worst rays included: the full-map diagonal and the
  // longest axis-aligned streets maximise cells visited and candidates
  // collected, so scratch reaches its high-water capacity during warm-up.
  const auto query_round = [&] {
    double sink = 0.0;
    sink += model.loss_db({0.0, 0.0}, {1600.0, 1600.0});
    sink += model.loss_db({0.0, 1600.0}, {1600.0, 0.0});
    sink += model.loss_db({0.0, 50.0}, {1600.0, 50.0});
    sink += model.loss_db({50.0, 0.0}, {50.0, 1600.0});
    for (int i = 0; i < 32; ++i) {
      const double t = i * 47.0;
      sink += model.loss_db({t, 10.0}, {1600.0 - t, 1590.0});
      sink += static_cast<double>(model.walls_crossed({t, t}, {800.0, 800.0}));
      sink += model.is_nlos({10.0, t}, {1590.0, 1600.0 - t}) ? 1.0 : 0.0;
    }
    return sink;
  };

  const double warm = query_round();
  ASSERT_EQ(query_round(), warm);  // deterministic: same rays, same bits
  ASSERT_GT(model.index_queries(), 0u);

  {
    CountScope scope;
    for (int round = 0; round < 16; ++round) {
      EXPECT_EQ(query_round(), warm);
    }
    EXPECT_EQ(scope.count(), 0u) << "indexed obstacle query allocated in steady state";
  }
}

}  // namespace
}  // namespace rst::dot11p
