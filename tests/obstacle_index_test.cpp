// PR 8 acceptance suite: the geo::ObstacleGrid ray index is a pure
// accelerator. Three layers of proof:
//
//  1. The exact segments_intersect contract is pinned (collinear overlap,
//     shared endpoints, T-touches, zero-length degenerate segments) before
//     anything relies on it.
//  2. Property equivalence: indexed and brute-force ObstacleShadowingModel
//     answers — is_nlos, walls_crossed and bitwise loss_db — match on ~200
//     random wall soups and a battery of adversarial rays (collinear with a
//     wall, endpoint-touching, axis-aligned along a cell boundary,
//     zero-length), across cell sizes including the derived default.
//  3. End-to-end: the four PR 6 city experiment fingerprints and a
//     partitioned city run are bit-identical with the index on and off,
//     and the index engagement counter proves the fast path actually ran.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "rst/core/config_io.hpp"
#include "rst/core/experiment.hpp"
#include "rst/core/testbed.hpp"
#include "rst/dot11p/channel.hpp"
#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/geo/obstacle_grid.hpp"
#include "rst/scenario/city.hpp"

namespace rst {
namespace {

using dot11p::ObstacleShadowingModel;
using dot11p::Wall;
using geo::Vec2;

// --- 1. segments_intersect contract ----------------------------------------

TEST(ObstacleIndex, SegmentsIntersectProperCrossing) {
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
  EXPECT_FALSE(geo::segments_intersect({0, 0}, {10, 10}, {20, 0}, {30, 10}));
}

TEST(ObstacleIndex, SegmentsIntersectSharedEndpointCounts) {
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 0}, {10, 0}, {20, 5}));
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 0}, {0, 0}, {-5, -5}));
}

TEST(ObstacleIndex, SegmentsIntersectTTouchCounts) {
  // Endpoint of cd lies in the interior of ab.
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 0}, {5, 0}, {5, 7}));
  // Endpoint of ab lies in the interior of cd.
  EXPECT_TRUE(geo::segments_intersect({5, 0}, {5, 7}, {0, 7}, {10, 7}));
}

TEST(ObstacleIndex, SegmentsIntersectCollinearOverlapCounts) {
  // Proper overlap.
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 0}, {5, 0}, {15, 0}));
  // Containment.
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 0}, {2, 0}, {8, 0}));
  // Single shared point, collinear.
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 0}, {10, 0}, {20, 0}));
  // Collinear but disjoint.
  EXPECT_FALSE(geo::segments_intersect({0, 0}, {10, 0}, {11, 0}, {20, 0}));
  // Parallel, not collinear.
  EXPECT_FALSE(geo::segments_intersect({0, 0}, {10, 0}, {0, 1}, {10, 1}));
}

TEST(ObstacleIndex, SegmentsIntersectZeroLengthDegeneratesToPoint) {
  // Point on the segment interior / endpoint.
  EXPECT_TRUE(geo::segments_intersect({5, 0}, {5, 0}, {0, 0}, {10, 0}));
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {10, 0}, {10, 0}, {10, 0}));
  // Point off the segment.
  EXPECT_FALSE(geo::segments_intersect({5, 1}, {5, 1}, {0, 0}, {10, 0}));
  // Two coincident points / two distinct points.
  EXPECT_TRUE(geo::segments_intersect({3, 3}, {3, 3}, {3, 3}, {3, 3}));
  EXPECT_FALSE(geo::segments_intersect({3, 3}, {3, 3}, {4, 4}, {4, 4}));
}

// --- 2. indexed vs brute-force property equivalence ------------------------

std::unique_ptr<ObstacleShadowingModel> make_model(const std::vector<Wall>& walls, bool use_index,
                                                   double cell_m = 0.0) {
  auto base = std::make_unique<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.5));
  return std::make_unique<ObstacleShadowingModel>(std::move(base), walls, use_index, cell_m);
}

/// One wall soup: `n` random segments in a [-extent, extent] square, with a
/// sprinkle of axis-aligned and cell-boundary-aligned walls.
std::vector<Wall> random_soup(std::mt19937_64& rng, int n, double extent, double cell_m) {
  std::uniform_real_distribution<double> pos{-extent, extent};
  std::uniform_real_distribution<double> len{0.0, extent / 2};
  std::uniform_real_distribution<double> loss{1.0, 40.0};
  std::vector<Wall> walls;
  walls.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Wall w;
    w.a = {pos(rng), pos(rng)};
    switch (i % 4) {
      case 0:  // free segment
        w.b = {pos(rng), pos(rng)};
        break;
      case 1:  // horizontal
        w.b = {w.a.x + len(rng), w.a.y};
        break;
      case 2:  // vertical
        w.b = {w.a.x, w.a.y + len(rng)};
        break;
      default:  // sitting exactly on a grid-cell boundary line
        w.a.y = std::floor(w.a.y / cell_m) * cell_m;
        w.b = {w.a.x + len(rng), w.a.y};
        break;
    }
    w.obstruction_loss_db = loss(rng);
    walls.push_back(w);
  }
  return walls;
}

/// Rays that historically break grid walkers: collinear with walls,
/// touching endpoints, axis-aligned on cell boundaries, zero-length.
std::vector<std::pair<Vec2, Vec2>> adversarial_rays(const std::vector<Wall>& walls,
                                                    std::mt19937_64& rng, double extent,
                                                    double cell_m) {
  std::uniform_real_distribution<double> pos{-extent, extent};
  std::uniform_int_distribution<std::size_t> pick{0, walls.size() - 1};
  std::vector<std::pair<Vec2, Vec2>> rays;
  for (int i = 0; i < 8; ++i) rays.emplace_back(Vec2{pos(rng), pos(rng)}, Vec2{pos(rng), pos(rng)});
  const Wall& w = walls[pick(rng)];
  // Collinear with a wall (extends beyond both ends).
  const Vec2 d{w.b.x - w.a.x, w.b.y - w.a.y};
  rays.emplace_back(Vec2{w.a.x - d.x, w.a.y - d.y}, Vec2{w.b.x + d.x, w.b.y + d.y});
  // Exactly the wall.
  rays.emplace_back(w.a, w.b);
  // Endpoint-touching: ray ends exactly on a wall endpoint.
  rays.emplace_back(Vec2{pos(rng), pos(rng)}, w.a);
  rays.emplace_back(w.b, Vec2{pos(rng), pos(rng)});
  // Axis-aligned along a cell boundary.
  const double boundary = std::floor(pos(rng) / cell_m) * cell_m;
  rays.emplace_back(Vec2{-extent, boundary}, Vec2{extent, boundary});
  rays.emplace_back(Vec2{boundary, -extent}, Vec2{boundary, extent});
  // Zero-length rays, one of them on a wall endpoint.
  rays.emplace_back(Vec2{pos(rng), pos(rng)}, rays.back().first);
  const Vec2 p{pos(rng), pos(rng)};
  rays.emplace_back(p, p);
  rays.emplace_back(w.a, w.a);
  return rays;
}

TEST(ObstacleIndex, IndexedMatchesBruteForceOnRandomSoups) {
  std::mt19937_64 rng{0xc0ffee};
  const double cell_sizes[] = {0.0, 7.0, 25.0, 250.0};  // 0 = derived
  int soups = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 1 + static_cast<int>(rng() % 64);
    const double extent = 50.0 + static_cast<double>(rng() % 400);
    const double cell_m = cell_sizes[rep % 4];
    const double boundary_cell = cell_m > 0.0 ? cell_m : 64.0;
    const std::vector<Wall> walls = random_soup(rng, n, extent, boundary_cell);
    const auto brute = make_model(walls, false);
    const auto indexed = make_model(walls, true, cell_m);
    ASSERT_FALSE(brute->index_enabled());
    ASSERT_TRUE(indexed->index_enabled());
    ++soups;
    for (const auto& [a, b] : adversarial_rays(walls, rng, extent, boundary_cell)) {
      const std::size_t brute_crossed = brute->walls_crossed(a, b);
      const std::size_t index_crossed = indexed->walls_crossed(a, b);
      ASSERT_EQ(brute_crossed, index_crossed)
          << "soup " << rep << " cell " << cell_m << " ray (" << a.x << "," << a.y << ")->("
          << b.x << "," << b.y << ")";
      ASSERT_EQ(brute->is_nlos(a, b), indexed->is_nlos(a, b));
      const double brute_loss = brute->loss_db(a, b);
      const double index_loss = indexed->loss_db(a, b);
      // Bitwise: the indexed walk must reproduce the exact accumulation.
      ASSERT_EQ(brute_loss, index_loss)
          << "soup " << rep << " cell " << cell_m << " crossed " << brute_crossed;
      const auto ld = indexed->loss_and_depth(a, b);
      ASSERT_EQ(ld.loss_db, brute_loss);
      ASSERT_EQ(ld.depth, brute_crossed);
    }
  }
  ASSERT_EQ(soups, 200);
}

TEST(ObstacleIndex, GridCandidatesSupersetCrossings) {
  // The grid may over-report candidates but never miss a crossing, and
  // candidates arrive deduplicated in ascending id order.
  std::mt19937_64 rng{42};
  const std::vector<Wall> walls = random_soup(rng, 48, 200.0, 16.0);
  std::vector<geo::Segment> segments;
  for (const Wall& w : walls) segments.push_back({w.a, w.b});
  const geo::ObstacleGrid grid{segments, 16.0};
  std::uniform_real_distribution<double> pos{-220.0, 220.0};
  for (int rep = 0; rep < 500; ++rep) {
    const Vec2 a{pos(rng), pos(rng)};
    const Vec2 b{pos(rng), pos(rng)};
    std::vector<std::uint32_t> candidates;
    grid.for_each_candidate(a, b, [&](std::uint32_t id) { candidates.push_back(id); });
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      ASSERT_LT(candidates[i - 1], candidates[i]) << "not ascending/deduplicated";
    }
    std::size_t brute_crossings = 0;
    for (std::uint32_t id = 0; id < segments.size(); ++id) {
      if (!geo::segments_intersect(a, b, segments[id].a, segments[id].b)) continue;
      ++brute_crossings;
      ASSERT_TRUE(std::find(candidates.begin(), candidates.end(), id) != candidates.end())
          << "crossing wall " << id << " missing from candidate set";
    }
    ASSERT_EQ(grid.crossings(a, b), brute_crossings);
  }
}

TEST(ObstacleIndex, DerivedCellSizeAndCounters) {
  std::vector<Wall> walls;
  walls.push_back({{0, 0}, {30, 0}, 20.0});
  walls.push_back({{0, 10}, {0, 40}, 20.0});
  const auto indexed = make_model(walls, true);
  ASSERT_TRUE(indexed->index_enabled());
  ASSERT_NE(indexed->index(), nullptr);
  EXPECT_DOUBLE_EQ(indexed->index()->cell_size_m(), 30.0);  // mean dominant extent
  EXPECT_EQ(indexed->index()->segment_count(), 2u);
  EXPECT_EQ(indexed->index_queries(), 0u);
  (void)indexed->walls_crossed({-5, 5}, {50, 5});
  (void)indexed->loss_db({-5, 5}, {50, 5});
  EXPECT_EQ(indexed->index_queries(), 2u);

  const auto brute = make_model(walls, false);
  (void)brute->walls_crossed({-5, 5}, {50, 5});
  EXPECT_EQ(brute->index_queries(), 0u);
  EXPECT_EQ(brute->index(), nullptr);

  // No walls: nothing to index, brute scan of nothing.
  const auto empty = make_model({}, true);
  EXPECT_FALSE(empty->index_enabled());
  EXPECT_EQ(empty->walls_crossed({0, 0}, {1, 1}), 0u);
}

// --- 3. end-to-end bit-identity --------------------------------------------

scenario::CitySpec small_city(bool obstacle_index) {
  scenario::CitySpec spec;
  spec.seed = 11;
  spec.blocks_x = 3;
  spec.blocks_y = 3;
  spec.block_m = 100.0;
  spec.vehicles = 8;
  spec.rsu_every = 3;
  spec.obstacle_index = obstacle_index;
  return spec;
}

TEST(ObstacleIndex, CoverageFingerprintIdenticalIndexOnOff) {
  scenario::CityScenario on{small_city(true)};
  scenario::CityScenario off{small_city(false)};
  ASSERT_NE(on.obstacles(), nullptr);
  ASSERT_TRUE(on.obstacles()->index_enabled());
  ASSERT_FALSE(off.obstacles()->index_enabled());
  const auto map_on = scenario::measure_coverage(on, 0, 15.0);
  const auto map_off = scenario::measure_coverage(off, 0, 15.0);
  EXPECT_EQ(map_on.fingerprint(), map_off.fingerprint());
  EXPECT_GT(on.obstacles()->index_queries(), 0u);
  EXPECT_EQ(off.obstacles()->index_queries(), 0u);
}

TEST(ObstacleIndex, HandoverFingerprintIdenticalIndexOnOff) {
  const auto on = scenario::run_handover_experiment(small_city(true), sim::SimTime::seconds(5));
  const auto off = scenario::run_handover_experiment(small_city(false), sim::SimTime::seconds(5));
  EXPECT_EQ(on.fingerprint(), off.fingerprint());
}

TEST(ObstacleIndex, CbrSweepFingerprintIdenticalIndexOnOff) {
  const std::vector<int> densities{4, 8};
  const auto on = scenario::run_cbr_sweep(small_city(true), densities, sim::SimTime::seconds(2));
  const auto off = scenario::run_cbr_sweep(small_city(false), densities, sim::SimTime::seconds(2));
  EXPECT_EQ(scenario::cbr_sweep_fingerprint(on), scenario::cbr_sweep_fingerprint(off));
}

TEST(ObstacleIndex, DeliveryFingerprintIdenticalIndexOnOff) {
  const auto on = scenario::run_delivery_experiment(small_city(true), sim::SimTime::seconds(5));
  const auto off = scenario::run_delivery_experiment(small_city(false), sim::SimTime::seconds(5));
  EXPECT_EQ(on.fingerprint(), off.fingerprint());
}

TEST(ObstacleIndex, EmergencyBrakeTablesIdenticalIndexOnOff) {
  core::TestbedConfig cfg;
  // A wall between the camera and the OBU so the obstacle model is load-
  // bearing for the tables, not just constructed.
  cfg.walls.push_back({{20.0, -5.0}, {20.0, 5.0}, 8.0});
  cfg.obstacle_index = true;
  const auto on = core::run_emergency_brake_experiment(cfg, 3, 1);
  cfg.obstacle_index = false;
  const auto off = core::run_emergency_brake_experiment(cfg, 3, 1);
  EXPECT_EQ(core::format_table2(on), core::format_table2(off));
  EXPECT_EQ(core::format_table3(on), core::format_table3(off));
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

/// Medium counters + scheduler state folded into one hash, as in
/// partition_equivalence_test.
std::uint64_t run_city_fingerprint(scenario::CitySpec spec, int partitions,
                                   std::uint64_t* index_queries) {
  spec.partitions = partitions;
  scenario::CityScenario city{spec};
  city.start();
  city.scheduler().run_until(sim::SimTime::seconds(3));
  const auto& st = city.medium().stats();
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, st.frames_transmitted);
  h = fnv1a(h, st.deliveries);
  h = fnv1a(h, st.dropped_half_duplex);
  h = fnv1a(h, st.dropped_below_sensitivity);
  h = fnv1a(h, st.dropped_error);
  h = fnv1a(h, st.culled_below_floor);
  h = fnv1a(h, city.scheduler().executed_events());
  if (index_queries != nullptr && city.obstacles() != nullptr) {
    *index_queries = city.obstacles()->index_queries();
  }
  return h;
}

TEST(ObstacleIndex, PartitionedCityRunIdenticalAndEngaged) {
  // Concurrent parallel_phase workers query the index lock-free; the run
  // must stay bit-identical to serial and to the brute-force scan.
  scenario::CitySpec spec = small_city(true);
  spec.vehicles = 12;
  std::uint64_t queries_serial = 0;
  std::uint64_t queries_partitioned = 0;
  const std::uint64_t serial = run_city_fingerprint(spec, 1, &queries_serial);
  const std::uint64_t partitioned = run_city_fingerprint(spec, 4, &queries_partitioned);
  EXPECT_EQ(serial, partitioned);
  EXPECT_GT(queries_serial, 0u);
  EXPECT_GT(queries_partitioned, 0u);
  spec.obstacle_index = false;
  const std::uint64_t brute = run_city_fingerprint(spec, 1, nullptr);
  EXPECT_EQ(serial, brute);
}

TEST(ObstacleIndex, LegacyNlosMemoServesStaticPairsAndInvalidatesOnMotion) {
  sim::Scheduler sched;
  sim::RandomStream rng{7, "nlos_memo"};
  dot11p::ChannelModel channel;
  std::vector<Wall> walls{{{50.0, -20.0}, {50.0, 20.0}, 15.0}};
  channel.path_loss = std::make_shared<ObstacleShadowingModel>(
      std::make_unique<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.2)), walls);
  dot11p::Medium medium{sched, rng.child("medium"), channel};  // legacy path

  geo::Vec2 mover{100.0, 50.0};
  std::vector<std::unique_ptr<dot11p::Radio>> radios;
  radios.push_back(std::make_unique<dot11p::Radio>(
      medium, dot11p::RadioConfig{}, [] { return geo::Vec2{0.0, 0.0}; }, rng.child("r0"), "r0"));
  radios.push_back(std::make_unique<dot11p::Radio>(
      medium, dot11p::RadioConfig{}, [] { return geo::Vec2{200.0, 0.0}; }, rng.child("r1"), "r1"));
  radios.push_back(std::make_unique<dot11p::Radio>(
      medium, dot11p::RadioConfig{}, [&mover] { return mover; }, rng.child("r2"), "r2"));

  const auto beacon_round = [&] {
    for (std::size_t i = 0; i < radios.size(); ++i) {
      sched.post_in(sim::SimTime::microseconds(static_cast<std::int64_t>(1 + i * 700)),
                    [&medium, &radios, i] {
                      dot11p::Frame f;
                      f.ac = dot11p::AccessCategory::BestEffort;
                      medium.begin_transmission(radios[i].get(), std::move(f), 300);
                    });
    }
    sched.run();
  };

  beacon_round();  // 3 tx x 2 rx: six distinct pairs, all cold
  EXPECT_EQ(medium.stats().nlos_memo_misses, 6u);
  EXPECT_EQ(medium.stats().nlos_memo_hits, 0u);

  beacon_round();  // nobody moved: every wall walk is memoized
  EXPECT_EQ(medium.stats().nlos_memo_misses, 6u);
  EXPECT_EQ(medium.stats().nlos_memo_hits, 6u);

  mover = {120.0, 50.0};  // motion bumps the slot epoch on next refresh
  beacon_round();  // the four mover pairs recompute, the static pair hits
  EXPECT_EQ(medium.stats().nlos_memo_misses, 10u);
  EXPECT_EQ(medium.stats().nlos_memo_hits, 8u);
}

TEST(ObstacleIndex, CitySpecRoundTripsObstacleIndexKnob) {
  scenario::CitySpec spec = small_city(false);
  const std::string text = scenario::format_city_spec(spec);
  EXPECT_NE(text.find("obstacle_index = false"), std::string::npos);
  const scenario::CitySpec parsed = scenario::parse_city_spec(text);
  EXPECT_FALSE(parsed.obstacle_index);
  EXPECT_TRUE(scenario::parse_city_spec("obstacle_index = true\n").obstacle_index);
}

}  // namespace
}  // namespace rst
