#include <gtest/gtest.h>

#include <memory>

#include "rst/its/facilities/den_basic_service.hpp"
#include "rst/middleware/kv.hpp"
#include "rst/middleware/openc2x_api.hpp"

namespace rst::middleware {
namespace {

using namespace rst::sim::literals;

/// One full station worth of plumbing to host the API.
struct ApiRig {
  sim::Scheduler sched;
  sim::RandomStream rng{61, "api"};
  geo::LocalFrame frame{{41.1780, -8.6080}};
  std::unique_ptr<dot11p::Medium> medium;
  std::unique_ptr<dot11p::Radio> radio;
  std::unique_ptr<its::GeoNetRouter> router;
  std::unique_ptr<its::DenBasicService> den;
  HttpLan lan{sched, rng.child("lan")};
  HttpHost host{lan, "obu"};
  HttpHost client{lan, "jetson"};
  std::unique_ptr<OpenC2xApi> api;

  ApiRig() {
    dot11p::ChannelModel channel;
    channel.path_loss =
        std::make_shared<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.0));
    medium = std::make_unique<dot11p::Medium>(sched, rng.child("m"), channel);
    radio = std::make_unique<dot11p::Radio>(
        *medium, dot11p::RadioConfig{}, [] { return geo::Vec2{0, 0}; }, rng.child("r"), "r");
    router = std::make_unique<its::GeoNetRouter>(
        sched, *radio, frame, its::GnAddress::from_station(42),
        [] { return its::EgoState{{0, 0}, 0, 0}; }, its::GeoNetConfig{}, rng.child("g"));
    den = std::make_unique<its::DenBasicService>(sched, *router, 42);
    api = std::make_unique<OpenC2xApi>(host, frame, *den);
  }
};

TEST(OpenC2xApi, ParseTriggerBodyCoversAllFields) {
  ApiRig rig;
  const auto r = rig.api->parse_trigger_body(
      "cause=97;subcause=2;quality=6;x=1.5;y=-2.25;validity_ms=5000;radius_m=80;"
      "repeat_ms=100;repeat_dur_ms=2000;event_speed=1.4;event_heading=1.57");
  EXPECT_EQ(r.event_type.cause_code, 97);
  EXPECT_EQ(r.event_type.sub_cause_code, 2);
  EXPECT_EQ(r.information_quality, 6);
  EXPECT_DOUBLE_EQ(r.event_position.x, 1.5);
  EXPECT_DOUBLE_EQ(r.event_position.y, -2.25);
  EXPECT_EQ(r.validity, 5_s);
  EXPECT_DOUBLE_EQ(r.destination_area.a, 80.0);
  ASSERT_TRUE(r.repetition_interval.has_value());
  EXPECT_EQ(*r.repetition_interval, 100_ms);
  EXPECT_EQ(r.repetition_duration, 2_s);
  ASSERT_TRUE(r.event_speed_mps.has_value());
  EXPECT_DOUBLE_EQ(*r.event_speed_mps, 1.4);
  ASSERT_TRUE(r.event_heading_rad.has_value());
}

TEST(OpenC2xApi, ParseTriggerBodyDefaults) {
  ApiRig rig;
  const auto r = rig.api->parse_trigger_body("");
  EXPECT_EQ(r.event_type.cause_code, 0);
  EXPECT_EQ(r.information_quality, 3);
  EXPECT_EQ(r.validity, sim::SimTime::seconds(600));
  EXPECT_DOUBLE_EQ(r.destination_area.a, 100.0);
  EXPECT_FALSE(r.repetition_interval.has_value());
}

TEST(OpenC2xApi, TriggerDenmReturnsActionId) {
  ApiRig rig;
  std::string body;
  rig.client.post("obu", "/trigger_denm", "cause=97;subcause=2;x=0;y=0",
                  [&](const HttpResponse& resp) { body = resp.body; });
  rig.sched.run();
  const auto kv = KvBody::parse(body);
  EXPECT_EQ(kv.get_int("station"), 42);
  EXPECT_EQ(kv.get_int("sequence"), 1);
  EXPECT_EQ(rig.den->stats().denms_sent, 1u);
}

TEST(OpenC2xApi, RequestDenmDrainsInboxFifo) {
  ApiRig rig;
  // Inject two received DENMs directly through the service callback path.
  its::Denm first;
  first.management.action_id = {7, 1};
  its::Denm second;
  second.management.action_id = {7, 2};
  // The API owns the DEN callback; feed through it like the service would.
  // (Simulate reception by invoking the BTP path: encode + loopback.)
  its::GnDeliveryMeta meta;
  meta.delivered_at = rig.sched.now();
  rig.den->set_denm_callback(nullptr);  // detach API to re-wire manually? No:
  // Instead: rebuild the API to restore its callback and push via den.
  rig.api = std::make_unique<OpenC2xApi>(rig.host, rig.frame, *rig.den);
  rig.den->on_btp_payload(first.encode(), meta);
  rig.den->on_btp_payload(second.encode(), meta);
  EXPECT_EQ(rig.api->pending_denms(), 2u);

  std::vector<std::string> bodies;
  const auto poll = [&] {
    rig.client.post("obu", "/request_denm", "",
                    [&](const HttpResponse& resp) { bodies.push_back(resp.body); });
    rig.sched.run();
  };
  poll();
  poll();
  ASSERT_EQ(bodies.size(), 2u);
  // One poll drains the whole inbox, oldest first, as denm0..denmN.
  const auto kv = KvBody::parse(bodies[0]);
  EXPECT_EQ(kv.get_int("count"), 2);
  const auto first_out = its::Denm::decode(hex_decode(*kv.get("denm0")));
  const auto second_out = its::Denm::decode(hex_decode(*kv.get("denm1")));
  EXPECT_EQ(first_out.management.action_id.sequence_number, 1);
  EXPECT_EQ(second_out.management.action_id.sequence_number, 2);
  EXPECT_TRUE(kv.get("received_ns0").has_value());
  EXPECT_TRUE(bodies[1].empty());  // inbox drained: HTTP 200 with empty body
  EXPECT_EQ(rig.api->pending_denms(), 0u);
}

TEST(OpenC2xApi, InboxBoundDropsOldest) {
  ApiRig rig;
  sim::Trace trace;
  // Rebuild the API with a tiny inbox so the bound is exercised quickly.
  rig.api = std::make_unique<OpenC2xApi>(rig.host, rig.frame, *rig.den, nullptr, &trace,
                                         std::string{}, nullptr, /*max_inbox=*/4);
  its::GnDeliveryMeta meta;
  meta.delivered_at = rig.sched.now();
  for (std::uint16_t seq = 1; seq <= 6; ++seq) {
    its::Denm denm;
    denm.management.action_id = {7, seq};
    rig.den->on_btp_payload(denm.encode(), meta);
  }
  // Bounded at 4: the two oldest (seq 1, 2) were evicted and counted.
  EXPECT_EQ(rig.api->pending_denms(), 4u);
  EXPECT_EQ(rig.api->stats().denms_dropped, 2u);
  EXPECT_EQ(trace.find_all_events(sim::Stage::InboxDrop).size(), 2u);

  // The survivors drain in FIFO order: seq 3..6.
  std::string body;
  rig.client.post("obu", "/request_denm", "",
                  [&](const HttpResponse& resp) { body = resp.body; });
  rig.sched.run();
  const auto kv = KvBody::parse(body);
  EXPECT_EQ(kv.get_int("count"), 4);
  for (int i = 0; i < 4; ++i) {
    const auto out = its::Denm::decode(hex_decode(*kv.get("denm" + std::to_string(i))));
    EXPECT_EQ(out.management.action_id.sequence_number, i + 3);
  }
}

}  // namespace
}  // namespace rst::middleware
