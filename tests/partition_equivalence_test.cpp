// PR 7 acceptance suite: partitioned medium execution is bit-identical to
// serial. Every city experiment fingerprint, and the raw medium counters of
// 50 random topologies, must not move by one bit when the same world runs
// at 1, 2 or 8 partition domains — including topologies whose stations
// migrate between domains mid-run.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "rst/core/config_io.hpp"
#include "rst/core/experiment.hpp"
#include "rst/core/testbed.hpp"
#include "rst/scenario/city.hpp"
#include "rst/sim/random.hpp"

namespace rst {
namespace {

using scenario::CitySpec;
using sim::SimTime;

constexpr int kPartitionCounts[] = {1, 2, 8};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

/// Runs a city for `duration` and folds every medium counter plus the
/// scheduler's event count into one hash. Any divergence between serial
/// and partitioned execution — an extra delivery, a different PER draw, a
/// cache-stat mismatch — lands in this value.
std::uint64_t run_city_fingerprint(CitySpec spec, int partitions, SimTime duration) {
  spec.partitions = partitions;
  scenario::CityScenario city{spec};
  if (partitions > 1) {
    EXPECT_NE(city.partition_engine(), nullptr);
  }
  city.start();
  city.scheduler().run_until(duration);
  const auto& st = city.medium().stats();
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, st.frames_transmitted);
  h = fnv1a(h, st.deliveries);
  h = fnv1a(h, st.dropped_half_duplex);
  h = fnv1a(h, st.dropped_below_sensitivity);
  h = fnv1a(h, st.dropped_error);
  h = fnv1a(h, st.culled_below_floor);
  h = fnv1a(h, st.budget_cache_hits);
  h = fnv1a(h, st.budget_cache_misses);
  h = fnv1a(h, city.scheduler().executed_events());
  h = fnv1a(h, static_cast<std::uint64_t>(city.scheduler().now().count_ns()));
  return h;
}

// The four PR 6 city experiments, with the specs their own suites use
// (scaled where the full experiment would dominate the suite's budget).

CitySpec coverage_city() {
  CitySpec spec;
  spec.seed = 7;
  spec.blocks_x = 3;
  spec.blocks_y = 3;
  spec.block_m = 100.0;
  spec.vehicles = 0;
  spec.rsu_every = 3;
  return spec;
}

CitySpec handover_city() {
  CitySpec spec;
  spec.seed = 11;
  spec.blocks_x = 4;
  spec.blocks_y = 2;
  spec.block_m = 120.0;
  spec.vehicles = 0;
  spec.rsu_corridor_only = true;
  spec.rsu_every = 2;
  spec.vehicle_speed_mps = 12.0;
  return spec;
}

CitySpec cbr_city() {
  CitySpec spec;
  spec.seed = 21;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.block_m = 60.0;
  spec.buildings = false;
  spec.rsu_every = 2;
  spec.max_rsus = 1;
  spec.obu_cam_interval = SimTime::milliseconds(20);
  return spec;
}

CitySpec delivery_city() {
  CitySpec spec;
  spec.seed = 31;
  spec.blocks_x = 6;
  spec.blocks_y = 2;
  spec.block_m = 120.0;
  spec.path_loss_exponent = 3.5;
  spec.vehicle_speed_mps = 8.0;
  return spec;
}

TEST(PartitionEquivalence, CoverageMapIsPartitionCountInvariant) {
  std::vector<std::uint64_t> prints;
  for (const int p : kPartitionCounts) {
    CitySpec spec = coverage_city();
    spec.partitions = p;
    scenario::CityScenario city{spec};
    prints.push_back(scenario::measure_coverage(city, 0, 10.0).fingerprint());
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(PartitionEquivalence, HandoverReportIsPartitionCountInvariant) {
  std::vector<std::uint64_t> prints;
  std::vector<scenario::HandoverReport> reports;
  for (const int p : kPartitionCounts) {
    CitySpec spec = handover_city();
    spec.partitions = p;
    reports.push_back(scenario::run_handover_experiment(spec, SimTime::seconds(40)));
    prints.push_back(reports.back().fingerprint());
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
  // Not just the hash: the structured timeline must match field by field.
  EXPECT_EQ(reports[0].serving_sequence, reports[2].serving_sequence);
  EXPECT_EQ(reports[0].max_service_gap, reports[2].max_service_gap);
  EXPECT_EQ(reports[0].receptions.size(), reports[2].receptions.size());
}

TEST(PartitionEquivalence, CbrSweepIsPartitionCountInvariant) {
  // 16 vehicles in a 120 m cell: every begin fans out past the parallel
  // threshold, so the partitioned path really executes.
  const std::vector<int> densities = {4, 16};
  std::vector<std::uint64_t> prints;
  for (const int p : kPartitionCounts) {
    CitySpec spec = cbr_city();
    spec.partitions = p;
    const auto curve = scenario::run_cbr_sweep(spec, densities, SimTime::seconds(2));
    prints.push_back(scenario::cbr_sweep_fingerprint(curve));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(PartitionEquivalence, DeliveryReportIsPartitionCountInvariant) {
  // 30 s reaches the full near-chain delivery (the far crossing takes
  // ~90 s; the delivery suite owns that long tail).
  std::vector<std::uint64_t> prints;
  for (const int p : kPartitionCounts) {
    CitySpec spec = delivery_city();
    spec.partitions = p;
    prints.push_back(scenario::run_delivery_experiment(spec, SimTime::seconds(30)).fingerprint());
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(PartitionEquivalence, EmergencyBrakeTablesByteCompareAcrossPartitions) {
  // The core testbed experiment through the same knob: the rendered
  // Table II/III reports must be byte-identical, not merely statistically
  // close.
  const auto run_tables = [](int partitions) {
    core::TestbedConfig config;
    config.medium_spatial_index = true;
    config.medium_partitions = partitions;
    const auto summary = core::run_emergency_brake_experiment(config, 4, 1);
    return core::format_table2(summary) + core::format_table3(summary);
  };
  const std::string serial = run_tables(1);
  EXPECT_EQ(serial, run_tables(2));
  EXPECT_EQ(serial, run_tables(8));
}

TEST(PartitionEquivalence, FiftyRandomTopologiesMatchSerial) {
  sim::RandomStream rng{0xC171ull, "partition-equivalence"};
  for (int i = 0; i < 50; ++i) {
    CitySpec spec;
    spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
    spec.blocks_x = static_cast<int>(rng.uniform_int(2, 4));
    spec.blocks_y = static_cast<int>(rng.uniform_int(2, 4));
    spec.block_m = rng.uniform(60.0, 140.0);
    spec.vehicles = static_cast<int>(rng.uniform_int(4, 14));
    spec.vehicle_speed_mps = rng.uniform(5.0, 20.0);
    spec.rsu_every = rng.uniform_int(0, 1) == 0 ? 2 : 3;
    spec.buildings = rng.uniform_int(0, 1) == 1;
    spec.shadowing_sigma_db = rng.uniform(0.0, 4.0);
    spec.obu_cam_interval = SimTime::milliseconds(rng.uniform_int(40, 100));
    // Bias towards small cells so several topologies span many domains.
    spec.grid_cell_m = rng.uniform_int(0, 1) == 0 ? 0.0 : rng.uniform(30.0, 90.0);
    const int partitions = i % 2 == 0 ? 2 : 8;

    const auto duration = SimTime::milliseconds(700);
    const std::uint64_t serial = run_city_fingerprint(spec, 1, duration);
    const std::uint64_t partitioned = run_city_fingerprint(spec, partitions, duration);
    EXPECT_EQ(serial, partitioned)
        << "topology " << i << " (seed " << spec.seed << ", " << spec.vehicles << " vehicles, "
        << partitions << " partitions) diverged from serial";
    if (serial != partitioned) break;  // one broken topology is enough signal
  }
}

TEST(PartitionEquivalence, DomainMigrationStressMatchesSerial) {
  // Fast movers over deliberately tiny grid cells: stations cross domain
  // boundaries every couple of seconds, exercising the sharded budget
  // cache's orphaned-entry path and the per-window domain re-mapping.
  CitySpec spec;
  spec.seed = 97;
  spec.blocks_x = 4;
  spec.blocks_y = 3;
  spec.block_m = 90.0;
  spec.vehicles = 12;
  spec.vehicle_speed_mps = 25.0;
  spec.vehicle_speed_jitter_mps = 5.0;
  spec.obu_cam_interval = SimTime::milliseconds(50);
  spec.grid_cell_m = 30.0;

  const auto duration = SimTime::seconds(3);
  const std::uint64_t serial = run_city_fingerprint(spec, 1, duration);
  EXPECT_EQ(serial, run_city_fingerprint(spec, 2, duration));
  EXPECT_EQ(serial, run_city_fingerprint(spec, 8, duration));
}

TEST(PartitionEquivalence, PartitionedPathActuallyEngages) {
  // Guard against the equivalence suite passing vacuously: with a dense
  // topology (every CAM reaches >= the parallel fan-out threshold of
  // candidates) the partitioned begin/finish phases must actually run.
  CitySpec spec;
  spec.seed = 97;
  spec.blocks_x = 4;
  spec.blocks_y = 3;
  spec.block_m = 90.0;
  spec.vehicles = 12;
  spec.obu_cam_interval = SimTime::milliseconds(50);
  spec.grid_cell_m = 30.0;

  const auto run_phases = [&](int partitions) {
    CitySpec s = spec;
    s.partitions = partitions;
    scenario::CityScenario city{s};
    city.start();
    city.scheduler().run_until(SimTime::milliseconds(500));
    return city.medium().partitioned_phases();
  };
  EXPECT_EQ(run_phases(1), 0u);
  EXPECT_GT(run_phases(8), 0u);
}

TEST(PartitionEquivalence, CitySpecFormatParseRoundTrips) {
  CitySpec spec = delivery_city();
  spec.partitions = 8;
  spec.grid_cell_m = 42.5;
  spec.seed = 0xDEADBEEFCAFEull;
  spec.shadowing_sigma_db = 3.25;
  spec.rsu_cam_interval = SimTime::milliseconds(80);
  spec.enable_kaf = true;

  const CitySpec back = scenario::parse_city_spec(scenario::format_city_spec(spec));
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.blocks_x, spec.blocks_x);
  EXPECT_EQ(back.block_m, spec.block_m);
  EXPECT_EQ(back.partitions, spec.partitions);
  EXPECT_EQ(back.grid_cell_m, spec.grid_cell_m);
  EXPECT_EQ(back.shadowing_sigma_db, spec.shadowing_sigma_db);
  EXPECT_EQ(back.rsu_cam_interval, spec.rsu_cam_interval);
  EXPECT_EQ(back.enable_kaf, spec.enable_kaf);
  EXPECT_EQ(back.path_loss_exponent, spec.path_loss_exponent);
  // Idempotence: formatting the round-tripped spec reproduces the text.
  EXPECT_EQ(scenario::format_city_spec(back), scenario::format_city_spec(spec));
}

TEST(PartitionEquivalence, RstPartitionsEnvironmentKnob) {
  ::unsetenv("RST_PARTITIONS");
  EXPECT_EQ(core::experiment_partitions_from_env(3), 3u);
  ::setenv("RST_PARTITIONS", "8", 1);
  EXPECT_EQ(core::experiment_partitions_from_env(3), 8u);
  ::setenv("RST_PARTITIONS", "junk", 1);
  EXPECT_EQ(core::experiment_partitions_from_env(2), 2u);
  ::setenv("RST_PARTITIONS", "0", 1);
  EXPECT_EQ(core::experiment_partitions_from_env(2), 2u);
  ::unsetenv("RST_PARTITIONS");

  // The spec-level resolution: explicit partitions win over the env.
  ::setenv("RST_PARTITIONS", "4", 1);
  CitySpec spec = cbr_city();
  spec.vehicles = 2;
  {
    scenario::CityScenario city{spec};
    ASSERT_NE(city.partition_engine(), nullptr);
    EXPECT_EQ(city.resolved_partitions(), 4);
  }
  spec.partitions = 1;
  {
    scenario::CityScenario city{spec};
    EXPECT_EQ(city.partition_engine(), nullptr);
    EXPECT_EQ(city.resolved_partitions(), 1);
  }
  ::unsetenv("RST_PARTITIONS");
}

}  // namespace
}  // namespace rst
