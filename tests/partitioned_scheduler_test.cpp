#include "rst/sim/partitioned_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rst/sim/random.hpp"

namespace rst::sim {
namespace {

using namespace rst::sim::literals;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// WorkerTeam

TEST(WorkerTeam, CoversEveryIndexExactlyOnce) {
  for (unsigned participants : {1u, 2u, 4u}) {
    detail::WorkerTeam team{participants};
    std::vector<std::atomic<int>> hits(101);
    team.run_phase(101, [&](unsigned i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerTeam, BackToBackPhasesAndWidthSmallerThanTeam) {
  detail::WorkerTeam team{4};
  std::atomic<int> total{0};
  for (int round = 0; round < 1000; ++round) {
    team.run_phase(2, [&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 2000);
}

TEST(WorkerTeam, WakesParkedWorkers) {
  detail::WorkerTeam team{3};
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round) {
    // Long enough for every worker to blow its spin budget and park.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    team.run_phase(16, [&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 48);
}

TEST(WorkerTeam, PropagatesFirstException) {
  detail::WorkerTeam team{4};
  EXPECT_THROW(
      team.run_phase(8,
                     [&](unsigned i) {
                       if (i == 5) throw std::runtime_error{"boom"};
                     }),
      std::runtime_error);
  // The team must stay usable after an exception drained.
  std::atomic<int> total{0};
  team.run_phase(8, [&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), 8);
}

// ---------------------------------------------------------------------------
// Lookahead helper

TEST(ConservativeLookahead, GapPlusSlot) {
  // 300 m at c is ~1.0007 us; plus the 13 us slot.
  const SimTime la = conservative_lookahead(300.0, SimTime::microseconds(13));
  EXPECT_GT(la, SimTime::microseconds(13));
  EXPECT_LT(la, SimTime::microseconds(15));
  EXPECT_EQ(conservative_lookahead(0.0, 13_us), 13_us);
}

// ---------------------------------------------------------------------------
// PartitionedScheduler basics

TEST(PartitionedScheduler, SinglePartitionMatchesSerialSemantics) {
  PartitionedScheduler eng{{.partitions = 1, .threads = 1, .lookahead = 1_ms}};
  std::vector<int> order;
  eng.post_at(0, 30_ms, [&] { order.push_back(3); });
  eng.post_at(0, 10_ms, [&] { order.push_back(1); });
  eng.post_at(0, 10_ms, [&] { order.push_back(2); });  // same t: push order
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.executed_events(), 3u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(PartitionedScheduler, RunUntilAdvancesNowAndLeavesLaterEvents) {
  PartitionedScheduler eng{{.partitions = 2, .threads = 1, .lookahead = 1_ms}};
  int fired = 0;
  eng.post_at(0, 10_ms, [&] { ++fired; });
  eng.post_at(1, 50_ms, [&] { ++fired; });
  EXPECT_EQ(eng.run_until(20_ms), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 20_ms);
  EXPECT_EQ(eng.pending_events(), 1u);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(PartitionedScheduler, RejectsPastAndBadPartition) {
  PartitionedScheduler eng{{.partitions = 2, .threads = 1, .lookahead = 1_ms}};
  eng.post_at(0, 10_ms, [] {});
  eng.run();
  EXPECT_THROW(eng.post_at(0, 5_ms, [] {}), std::invalid_argument);
  EXPECT_THROW(eng.post_at(7, 20_ms, [] {}), std::out_of_range);
  EXPECT_THROW(PartitionedScheduler({.partitions = 0}), std::invalid_argument);
  EXPECT_THROW(PartitionedScheduler({.partitions = 1, .lookahead = SimTime::zero()}),
               std::invalid_argument);
}

TEST(PartitionedScheduler, IntraPartitionSchedulingInsideEventIsLocal) {
  PartitionedScheduler eng{{.partitions = 2, .threads = 1, .lookahead = 1_ms}};
  SimTime fired_at = SimTime::zero();
  eng.post_at(1, 10_ms, [&] {
    EXPECT_EQ(eng.local_now(), 10_ms);
    // Same partition, inside the current window: runs this window.
    eng.post_in(1, 100_us, [&] { fired_at = eng.local_now(); });
  });
  eng.run();
  EXPECT_EQ(fired_at, 10_ms + 100_us);
}

TEST(PartitionedScheduler, CrossPartitionDirectSchedulingMidEventThrows) {
  PartitionedScheduler eng{{.partitions = 2, .threads = 1, .lookahead = 1_ms}};
  bool threw = false;
  eng.post_at(0, 10_ms, [&] {
    try {
      eng.post_at(1, 20_ms, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(PartitionedScheduler, SendEnforcesLookaheadContract) {
  PartitionedScheduler eng{{.partitions = 2, .threads = 1, .lookahead = 1_ms}};
  bool threw = false;
  bool delivered = false;
  eng.post_at(0, 10_ms, [&] {
    // The window is [10ms, 11ms); a message inside it must be refused.
    try {
      eng.send(1, 10_ms + 500_us, [] {});
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    // local_now + lookahead is always >= the window end, so always legal.
    eng.send(1, eng.local_now() + 1_ms, [&] { delivered = true; });
  });
  // send() outside an executing event is meaningless.
  EXPECT_THROW(eng.send(1, 100_ms, [] {}), std::logic_error);
  eng.run();
  EXPECT_TRUE(threw);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(eng.messages_delivered(), 1u);
}

TEST(PartitionedScheduler, MessagesMergeInTimeSourceSeqOrder) {
  PartitionedScheduler eng{{.partitions = 3, .threads = 1, .lookahead = 1_ms}};
  std::vector<std::string> order;
  // Both sources send to partition 2 at equal target times within one
  // window; merge order must be (when, source partition, send seq)
  // regardless of which source's events ran first.
  eng.post_at(1, 10_ms, [&] {
    eng.send(2, 15_ms, [&] { order.push_back("p1#0"); });
    eng.send(2, 15_ms, [&] { order.push_back("p1#1"); });
  });
  eng.post_at(0, 10_ms + 100_us, [&] {
    eng.send(2, 15_ms, [&] { order.push_back("p0#0"); });
    eng.send(2, 14_ms, [&] { order.push_back("p0#early"); });
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<std::string>{"p0#early", "p0#0", "p1#0", "p1#1"}));
}

TEST(PartitionedScheduler, CancelOfEventHandedToAnotherPartition) {
  PartitionedScheduler eng{{.partitions = 2, .threads = 2, .lookahead = 1_ms}};
  bool fired = false;
  EventHandle h;
  eng.post_at(0, 10_ms, [&] {
    // Hand an event to partition 1, several windows out...
    h = eng.send_tracked(1, 20_ms, [&] { fired = true; });
  });
  // ...and cancel it from partition 0 with a barrier between the cancel
  // and the event's window, so the outcome is deterministic.
  eng.post_at(0, 15_ms, [&] {
    EXPECT_TRUE(h.pending());
    h.cancel();
  });
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(h.pending());
}

TEST(PartitionedScheduler, ParallelPhaseCoversWidth) {
  PartitionedScheduler eng{{.partitions = 4, .threads = 4, .lookahead = 1_ms}};
  std::vector<std::atomic<int>> hits(37);
  eng.parallel_phase(37,
                     [&](unsigned i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PartitionedScheduler, WindowAccountingIsConsistent) {
  PartitionedScheduler eng{{.partitions = 4, .threads = 2, .lookahead = 1_ms}};
  for (int i = 0; i < 40; ++i) {
    eng.post_at(static_cast<std::uint32_t>(i % 4), SimTime::milliseconds(i), [] {});
  }
  const std::size_t n = eng.run();
  EXPECT_EQ(n, 40u);
  EXPECT_EQ(eng.executed_events(), 40u);
  EXPECT_GE(eng.windows_executed(), 1u);
  EXPECT_LE(eng.windows_executed(), 40u);
}

// ---------------------------------------------------------------------------
// Determinism: a messy cross-partition workload must produce a bit-identical
// execution trace at any thread count.

struct TraceCell {
  std::vector<std::uint64_t> log;  // partition-owned: workers never share one
};

struct WorkloadCtx {
  PartitionedScheduler* eng;
  std::vector<TraceCell>* cells;
};

// One hop of a cross-partition random walk: logs (id, local time) on
// partition `at`, then hands a derived hop to a pseudo-random partition at
// a lookahead-legal offset. A named struct so the callback type can
// reference itself for the resend.
struct Hop {
  WorkloadCtx c;
  std::uint64_t id;
  int ttl;
  std::uint32_t at;
  void operator()() const {
    auto& cell = (*c.cells)[at];
    cell.log.push_back(id);
    cell.log.push_back(static_cast<std::uint64_t>(c.eng->local_now().count_ns()));
    if (ttl <= 0) return;
    const std::uint64_t next_id = id * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto to = static_cast<std::uint32_t>(next_id % c.eng->partitions());
    const SimTime when = c.eng->local_now() + c.eng->lookahead() +
                         SimTime::microseconds(static_cast<std::int64_t>(next_id % 97));
    c.eng->send(to, when, Hop{c, next_id, ttl - 1, to});
  }
};

std::uint64_t run_workload(std::uint32_t partitions, unsigned threads, std::uint64_t seed) {
  PartitionedScheduler eng{{.partitions = partitions, .threads = threads, .lookahead = 500_us}};
  std::vector<TraceCell> cells(partitions);
  WorkloadCtx ctx{&eng, &cells};

  RandomStream root{seed, "partition-workload"};
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto id = static_cast<std::uint64_t>(root.uniform_int(0, 1'000'000'000));
    const auto at = static_cast<std::uint32_t>(i % partitions);
    eng.post_at(at, SimTime::microseconds(static_cast<std::int64_t>(100 + id % 700)),
                Hop{ctx, id, 4, at});
  }
  eng.run();

  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    h = fnv1a(h, p);
    for (std::uint64_t v : cells[p].log) h = fnv1a(h, v);
  }
  h = fnv1a(h, eng.executed_events());
  h = fnv1a(h, eng.messages_delivered());
  return h;
}

TEST(PartitionedScheduler, BitIdenticalAcrossThreadCounts) {
  for (std::uint32_t partitions : {2u, 5u, 8u}) {
    const std::uint64_t serial = run_workload(partitions, 1, 42);
    EXPECT_EQ(run_workload(partitions, 2, 42), serial) << partitions << " parts, 2 threads";
    EXPECT_EQ(run_workload(partitions, 8, 42), serial) << partitions << " parts, 8 threads";
    // Re-run at the same thread count: reproducible, not merely invariant.
    EXPECT_EQ(run_workload(partitions, 2, 42), serial);
    // A different seed must actually change the trace.
    EXPECT_NE(run_workload(partitions, 1, 43), serial);
  }
}

}  // namespace
}  // namespace rst::sim
