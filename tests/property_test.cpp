// Property-style parameterized sweeps (TEST_P) over the library's core
// invariants: codec round-trips under randomized inputs, geometric
// invariants of geo-areas, monotonicity of the PHY abstractions, and
// end-to-end guarantees of the assembled testbed across seeds.

#include <gtest/gtest.h>

#include "rst/core/experiment.hpp"
#include "rst/dot11p/phy_params.hpp"
#include "rst/geo/geo_area.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/sim/random.hpp"

namespace rst {
namespace {

using namespace rst::sim::literals;

// ---------------------------------------------------------------- DENM codec

class DenmRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

its::Denm random_denm(sim::RandomStream& r) {
  using namespace rst::its;
  Denm denm;
  denm.header.station_id = static_cast<StationId>(r.uniform_int(0, 4294967295LL));
  denm.management.action_id = {static_cast<StationId>(r.uniform_int(0, 4294967295LL)),
                               static_cast<std::uint16_t>(r.uniform_int(0, 65535))};
  denm.management.detection_time = static_cast<TimestampIts>(r.uniform_int(0, kTimestampItsMax));
  denm.management.reference_time = static_cast<TimestampIts>(r.uniform_int(0, kTimestampItsMax));
  if (r.bernoulli(0.3)) denm.management.termination = static_cast<Termination>(r.uniform_int(0, 1));
  denm.management.event_position.latitude =
      static_cast<std::int32_t>(r.uniform_int(-900000000, 900000001));
  denm.management.event_position.longitude =
      static_cast<std::int32_t>(r.uniform_int(-1800000000, 1800000001));
  if (r.bernoulli(0.5)) {
    denm.management.relevance_distance = static_cast<RelevanceDistance>(r.uniform_int(0, 7));
  }
  if (r.bernoulli(0.5)) {
    denm.management.relevance_traffic_direction =
        static_cast<RelevanceTrafficDirection>(r.uniform_int(0, 3));
  }
  denm.management.validity_duration_s = static_cast<std::uint32_t>(r.uniform_int(0, 86400));
  if (r.bernoulli(0.5)) {
    denm.management.transmission_interval_ms = static_cast<std::uint16_t>(r.uniform_int(1, 10000));
  }
  denm.management.station_type = static_cast<StationType>(r.uniform_int(0, 15));

  if (r.bernoulli(0.8)) {
    SituationContainer situation;
    situation.information_quality = static_cast<std::uint8_t>(r.uniform_int(0, 7));
    situation.event_type = {static_cast<std::uint8_t>(r.uniform_int(0, 255)),
                            static_cast<std::uint8_t>(r.uniform_int(0, 255))};
    if (r.bernoulli(0.3)) {
      situation.linked_cause = EventType{static_cast<std::uint8_t>(r.uniform_int(0, 255)), 0};
    }
    denm.situation = situation;
  }
  if (r.bernoulli(0.5)) {
    LocationContainer location;
    if (r.bernoulli(0.5)) location.event_speed = Speed::from_mps(r.uniform(0, 50));
    if (r.bernoulli(0.5)) {
      location.event_position_heading =
          Heading{static_cast<std::uint16_t>(r.uniform_int(0, 3601)), 10};
    }
    const auto n_traces = static_cast<std::size_t>(r.uniform_int(1, 7));
    for (std::size_t t = 0; t < n_traces; ++t) {
      PathHistory history;
      const auto n_points = static_cast<std::size_t>(r.uniform_int(0, 10));
      for (std::size_t k = 0; k < n_points; ++k) {
        history.points.push_back({static_cast<std::int32_t>(r.uniform_int(-131072, 131071)),
                                  static_cast<std::int32_t>(r.uniform_int(-131072, 131071)),
                                  static_cast<std::int32_t>(r.uniform_int(0, 65535))});
      }
      location.traces.push_back(std::move(history));
    }
    denm.location = location;
  }
  if (r.bernoulli(0.4)) {
    AlacarteContainer alacarte;
    if (r.bernoulli(0.5)) alacarte.lane_position = static_cast<std::int8_t>(r.uniform_int(-1, 14));
    if (r.bernoulli(0.5)) {
      alacarte.external_temperature = static_cast<std::int8_t>(r.uniform_int(-60, 67));
    }
    if (r.bernoulli(0.5)) {
      StationaryVehicleContainer sv;
      if (r.bernoulli(0.5)) sv.stationary_since = static_cast<std::uint8_t>(r.uniform_int(0, 3));
      if (r.bernoulli(0.5)) sv.number_of_occupants = static_cast<std::uint8_t>(r.uniform_int(0, 127));
      alacarte.stationary_vehicle = sv;
    }
    denm.alacarte = alacarte;
  }
  return denm;
}

TEST_P(DenmRoundTripProperty, EncodeDecodeIsIdentity) {
  sim::RandomStream r{GetParam(), "denm_prop"};
  for (int i = 0; i < 50; ++i) {
    const its::Denm denm = random_denm(r);
    EXPECT_EQ(its::Denm::decode(denm.encode()), denm);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenmRoundTripProperty, ::testing::Range<std::uint64_t>(1, 11));

// --------------------------------------------------------------- geo areas

struct AreaCase {
  geo::AreaShape shape;
  double azimuth;
};

class GeoAreaProperty : public ::testing::TestWithParam<AreaCase> {};

TEST_P(GeoAreaProperty, CenterInsideBorderMonotone) {
  const auto& p = GetParam();
  geo::GeoArea area{p.shape, {3, -4}, 6.0, 2.5, p.azimuth};
  // The centre is always inside.
  EXPECT_GT(area.geometric_function(area.center), 0.0);
  // Along any ray from the centre, the geometric function decreases.
  sim::RandomStream r{9, "area_prop"};
  for (int i = 0; i < 100; ++i) {
    const geo::Vec2 dir = geo::vector_from_heading(r.uniform(0, 2 * M_PI));
    double prev = area.geometric_function(area.center);
    for (double t = 0.5; t < 12.0; t += 0.5) {
      const double f = area.geometric_function(area.center + dir * t);
      EXPECT_LE(f, prev + 1e-9);
      prev = f;
    }
  }
  // Points further than the bounding radius are always outside.
  for (int i = 0; i < 100; ++i) {
    const geo::Vec2 dir = geo::vector_from_heading(r.uniform(0, 2 * M_PI));
    EXPECT_FALSE(area.contains(area.center + dir * (area.bounding_radius() + 0.01)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndAzimuths, GeoAreaProperty,
    ::testing::Values(AreaCase{geo::AreaShape::Circle, 0.0},
                      AreaCase{geo::AreaShape::Circle, 1.0},
                      AreaCase{geo::AreaShape::Ellipse, 0.0},
                      AreaCase{geo::AreaShape::Ellipse, 0.7},
                      AreaCase{geo::AreaShape::Ellipse, 2.5},
                      AreaCase{geo::AreaShape::Rectangle, 0.0},
                      AreaCase{geo::AreaShape::Rectangle, 1.2},
                      AreaCase{geo::AreaShape::Rectangle, 4.0}));

// ------------------------------------------------------------------- PHY

class McsProperty : public ::testing::TestWithParam<dot11p::Mcs> {};

TEST_P(McsProperty, AirtimeAndPerInvariants) {
  const auto mcs = GetParam();
  using namespace rst::dot11p;
  // Airtime strictly increases with PSDU length (per symbol granularity).
  EXPECT_LT(frame_airtime(10, mcs), frame_airtime(2000, mcs));
  // PER is monotone non-increasing in SINR and within [0, 1].
  double prev = 1.1;
  for (double sinr = -10; sinr <= 40; sinr += 0.5) {
    const double per = packet_error_rate(sinr, 300, mcs);
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
  // At 40 dB SINR every MCS decodes reliably.
  EXPECT_LT(packet_error_rate(40.0, 300, mcs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, McsProperty,
                         ::testing::Values(dot11p::Mcs::Bpsk12, dot11p::Mcs::Bpsk34,
                                           dot11p::Mcs::Qpsk12, dot11p::Mcs::Qpsk34,
                                           dot11p::Mcs::Qam16_12, dot11p::Mcs::Qam16_34,
                                           dot11p::Mcs::Qam64_23, dot11p::Mcs::Qam64_34));

// ------------------------------------------------------ end-to-end seeds

class EndToEndProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndProperty, ChainOrderingAndHeadlineBoundHold) {
  core::TestbedConfig config;
  config.seed = 100000 + GetParam() * 13;
  core::TestbedScenario scenario{config};
  const core::TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  EXPECT_LT(r.t_detection, r.t_rsu_send);
  EXPECT_LT(r.t_rsu_send, r.t_obu_receive);
  EXPECT_LT(r.t_obu_receive, r.t_power_cut);
  EXPECT_LT(r.t_power_cut, r.t_halt);
  EXPECT_LT(r.meas_total_ms, 100.0);
  EXPECT_GT(r.braking_distance_m, 0.1);
  EXPECT_LT(r.braking_distance_m, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndProperty, ::testing::Range<std::uint64_t>(0, 8));

// ------------------------------------------------------ braking monotonicity

class BrakingSpeedProperty : public ::testing::TestWithParam<double> {};

TEST_P(BrakingSpeedProperty, FasterApproachBrakesLonger) {
  const double speed = GetParam();
  core::TestbedConfig config;
  config.seed = 424242;
  config.planner.target_speed_mps = speed;
  const auto summary = core::run_emergency_brake_experiment(config, 5);
  ASSERT_EQ(summary.failures, 0u);
  // Kinematic lower bound: coast distance alone is v^2 / (2 a_max).
  const double coast_min = speed * speed / (2.0 * 1.3 * config.vehicle_params.power_cut_decel_mps2);
  EXPECT_GT(summary.braking_distance_m.mean(), coast_min);
  // And a generous upper bound: coast at the weakest plausible friction
  // plus a full polling period of travel.
  const double coast_max = speed * speed / (2.0 * 0.6 * config.vehicle_params.power_cut_decel_mps2);
  EXPECT_LT(summary.braking_distance_m.mean(), coast_max + speed * 0.12);
}

INSTANTIATE_TEST_SUITE_P(Speeds, BrakingSpeedProperty, ::testing::Values(0.8, 1.0, 1.2, 1.5));

}  // namespace
}  // namespace rst
