#include <gtest/gtest.h>

#include <cmath>

#include "rst/its/facilities/ldm.hpp"
#include "rst/middleware/kv.hpp"
#include "rst/roadside/camera.hpp"
#include "rst/sim/stats.hpp"
#include "rst/roadside/hazard_service.hpp"
#include "rst/roadside/object_detection_service.hpp"
#include "rst/roadside/yolo_sim.hpp"

namespace rst::roadside {
namespace {

using namespace rst::sim::literals;

TEST(Camera, SeesObjectsInFovAndRange) {
  sim::Scheduler sched;
  RoadsideCamera camera{sched, {.position = {0, 8}, .facing_rad = M_PI, .max_range_m = 12.0}};
  geo::Vec2 pos{0, 4};
  camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  auto frame = camera.capture();
  ASSERT_EQ(frame.objects.size(), 1u);
  EXPECT_NEAR(frame.objects[0].true_distance_m, 4.0, 1e-9);
  EXPECT_NEAR(frame.objects[0].bearing_rad, 0.0, 1e-9);  // straight ahead

  pos = {0, 25};  // behind the camera
  frame = camera.capture();
  EXPECT_TRUE(frame.objects.empty());

  pos = {0, -10};  // in front but beyond range
  frame = camera.capture();
  EXPECT_TRUE(frame.objects.empty());
}

TEST(Camera, BearingSignAndFovEdge) {
  sim::Scheduler sched;
  RoadsideCamera camera{sched,
                        {.position = {0, 0}, .facing_rad = 0.0, .fov_half_angle_rad = M_PI / 4}};
  geo::Vec2 pos{1, 1};  // 45 degrees east of north: exactly on the FOV edge
  camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  auto frame = camera.capture();
  ASSERT_EQ(frame.objects.size(), 1u);
  EXPECT_NEAR(frame.objects[0].bearing_rad, M_PI / 4, 1e-9);
  pos = {1.1, 1};  // just outside
  frame = camera.capture();
  EXPECT_TRUE(frame.objects.empty());
}

TEST(Camera, WallsOccludeTheOpticalPath) {
  sim::Scheduler sched;
  RoadsideCamera camera{sched, {.position = {0, 0}, .facing_rad = 0.0}};
  geo::Vec2 pos{0, 5};
  camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  EXPECT_EQ(camera.capture().objects.size(), 1u);
  camera.set_walls({{.a = {-2, 3}, .b = {2, 3}, .obstruction_loss_db = 20}});
  EXPECT_TRUE(camera.capture().objects.empty());
  // An object in front of the wall stays visible.
  pos = {0, 2};
  EXPECT_EQ(camera.capture().objects.size(), 1u);
}

TEST(Camera, FrameNumbersIncrease) {
  sim::Scheduler sched;
  RoadsideCamera camera{sched, {}};
  EXPECT_EQ(camera.capture().frame_number, 1u);
  EXPECT_EQ(camera.capture().frame_number, 2u);
  EXPECT_EQ(camera.frames_captured(), 2u);
}

CameraFrame frame_with(Presentation p, double distance) {
  CameraFrame frame;
  frame.objects.push_back({1, distance, 0.0, p});
  return frame;
}

TEST(Yolo, MinRangeQuirkReportsDefaultDistance) {
  YoloSimulator yolo{sim::RandomStream{1, "y"}};
  int defaults = 0;
  for (int i = 0; i < 200; ++i) {
    for (const auto& det : yolo.detect(frame_with(Presentation::StopSign, 0.5))) {
      if (det.estimated_distance_m == 1.73) ++defaults;
    }
  }
  EXPECT_GT(defaults, 150);  // the paper's "defaults to 1.73 m" behaviour
}

TEST(Yolo, DistanceEstimateUnbiasedAboveMinRange) {
  YoloSimulator yolo{sim::RandomStream{2, "y"}};
  sim::RunningStats est;
  for (int i = 0; i < 2000; ++i) {
    for (const auto& det : yolo.detect(frame_with(Presentation::StopSign, 3.0))) {
      est.add(det.estimated_distance_m);
    }
  }
  EXPECT_NEAR(est.mean(), 3.0, 0.01);
  EXPECT_NEAR(est.stddev(), 0.03, 0.01);
}

TEST(Yolo, RangeLimitsPerPresentation) {
  YoloSimulator yolo{sim::RandomStream{3, "y"}};
  // Beyond each profile's max range nothing is detected, ever.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(yolo.detect(frame_with(Presentation::BareRobot, 2.5)).empty());
    EXPECT_TRUE(yolo.detect(frame_with(Presentation::BodyShell, 3.0)).empty());
    EXPECT_TRUE(yolo.detect(frame_with(Presentation::StopSign, 7.0)).empty());
  }
}

TEST(Yolo, DetectionRatesOrderedByPresentation) {
  YoloSimulator yolo{sim::RandomStream{4, "y"}};
  const auto rate = [&](Presentation p) {
    int hits = 0;
    for (int i = 0; i < 2000; ++i) hits += !yolo.detect(frame_with(p, 1.5)).empty();
    return hits / 2000.0;
  };
  const double bare = rate(Presentation::BareRobot);
  const double shell = rate(Presentation::BodyShell);
  const double sign = rate(Presentation::StopSign);
  EXPECT_LT(bare, shell);
  EXPECT_LT(shell, sign);
  EXPECT_GT(sign, 0.9);
}

TEST(Yolo, LabelsFollowProfiles) {
  YoloSimulator yolo{sim::RandomStream{5, "y"}};
  std::map<std::string, int> labels;
  for (int i = 0; i < 2000; ++i) {
    for (const auto& det : yolo.detect(frame_with(Presentation::BodyShell, 1.5))) {
      ++labels[det.label];
    }
  }
  EXPECT_GT(labels["car"], 0);
  EXPECT_GT(labels["truck"], 0);
  EXPECT_EQ(labels.count("stop sign"), 0u);
}

struct EdgeRig {
  sim::Scheduler sched;
  sim::RandomStream rng{11, "edge"};
  geo::LocalFrame frame{{41.1780, -8.6080}};
  middleware::MessageBus bus{sched, rng.child("bus")};
  middleware::HttpLan lan{sched, rng.child("lan")};
  middleware::HttpHost edge_host{lan, "edge"};
  middleware::HttpHost rsu_host{lan, "rsu"};
  RoadsideCamera camera{sched, {.position = {0, 8}, .facing_rad = M_PI}};
  YoloSimulator yolo{rng.child("yolo")};
  ObjectDetectionService detection{sched, bus, camera, yolo, rng.child("od")};
  its::Ldm ldm{sched, frame};
  HazardAdvertisementService hazard{sched,
                                    bus,
                                    edge_host,
                                    frame,
                                    {0, 8},
                                    M_PI,
                                    rng.child("hz"),
                                    {},
                                    &ldm};
  std::vector<std::string> trigger_bodies;

  EdgeRig() {
    rsu_host.handle("/trigger_denm", [this](const middleware::HttpRequest& req) {
      trigger_bodies.push_back(req.body);
      return middleware::HttpResponse{200, "station=900;sequence=1"};
    });
  }
};

TEST(ObjectDetection, PublishesBatchesAtConfiguredRate) {
  EdgeRig rig;
  geo::Vec2 pos{0, 5};
  rig.camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  int batches = 0;
  rig.bus.subscribe_to<DetectionBatch>("detections", [&](const DetectionBatch& b) {
    if (!b.detections.empty()) ++batches;
  });
  rig.detection.start();
  rig.sched.run_until(5_s);
  // ~4 FPS for 5 s with 97% per-frame detection: most batches non-empty.
  EXPECT_GE(batches, 14);
  EXPECT_LE(batches, 21);
  EXPECT_NEAR(rig.detection.effective_fps(), 4.0, 0.5);
}

TEST(ObjectDetection, RangeRateTracksApproach) {
  EdgeRig rig;
  geo::Vec2 pos{0, 0};
  rig.camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  std::vector<double> range_rates;
  rig.bus.subscribe_to<DetectionBatch>("detections", [&](const DetectionBatch& b) {
    for (const auto& d : b.detections) {
      if (d.range_rate_mps != 0) range_rates.push_back(d.range_rate_mps);
    }
  });
  rig.detection.start();
  // Approach the camera at 1 m/s.
  std::function<void()> move = [&] {
    pos.y += 0.05;
    rig.sched.schedule_in(50_ms, move);
  };
  rig.sched.schedule_in(50_ms, move);
  rig.sched.run_until(4_s);
  ASSERT_GT(range_rates.size(), 5u);
  sim::RunningStats rr;
  for (double v : range_rates) rr.add(v);
  EXPECT_NEAR(rr.mean(), -1.0, 0.25);  // negative: approaching
}

TEST(Hazard, TriggersOnceWhenThresholdCrossed) {
  EdgeRig rig;
  geo::Vec2 pos{0, 2};  // 6 m from camera, outside stop-sign range? (6 m max: at edge)
  rig.camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  rig.detection.start();
  rig.hazard.start();
  // Move toward the camera at 1 m/s.
  std::function<void()> move = [&] {
    pos.y += 0.05;
    rig.sched.schedule_in(50_ms, move);
  };
  rig.sched.schedule_in(50_ms, move);
  rig.sched.run_until(5500_ms);  // past the crossing, before LDM-object expiry
  EXPECT_EQ(rig.hazard.stats().denms_triggered, 1u);
  ASSERT_EQ(rig.trigger_bodies.size(), 1u);
  // The trigger body carries the collision-risk cause code.
  const auto kv = middleware::KvBody::parse(rig.trigger_bodies[0]);
  EXPECT_EQ(kv.get_int("cause"), 97);
  EXPECT_EQ(kv.get_int("subcause"), 2);
  // The perceived object landed in the LDM.
  EXPECT_FALSE(rig.ldm.perceived_objects().empty());
}

TEST(Hazard, NoTriggerWhileFarAway) {
  EdgeRig rig;
  geo::Vec2 pos{0, 4};  // 4 m away, threshold is 1.52 m
  rig.camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  rig.detection.start();
  rig.hazard.start();
  rig.sched.run_until(5_s);
  EXPECT_EQ(rig.hazard.stats().denms_triggered, 0u);
  EXPECT_GT(rig.hazard.stats().batches_seen, 10u);
}

TEST(Hazard, MinRangeDefaultActsAsBackstop) {
  EdgeRig rig;
  // Track the object in the narrow band between the 1.52 m threshold and
  // the 1.73 m default (so it is known to be approaching), then jump it
  // inside the min working range in one step — the situation where the
  // frames between threshold and min range were all missed.
  geo::Vec2 pos{0, 6.4};  // 1.6 m from the camera
  rig.camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  rig.detection.start();
  rig.hazard.start();
  rig.sched.run_until(1500_ms);       // tracked at ~1.6 m
  pos = {0, 7.6};                     // 0.4 m: YOLO now reports the 1.73 default
  rig.sched.run_until(4_s);
  EXPECT_GE(rig.hazard.stats().denms_triggered, 1u);
}

/// Rig with the camera watching the *crossing* road (facing east): the
/// protagonist is known only through CAMs in the LDM, the crossing road
/// user only through the camera — the genuine Fig. 1 arrangement.
struct CpaRig {
  sim::Scheduler sched;
  sim::RandomStream rng{21, "cpa_rig"};
  geo::LocalFrame frame{{41.1780, -8.6080}};
  middleware::MessageBus bus{sched, rng.child("bus")};
  middleware::HttpLan lan{sched, rng.child("lan")};
  middleware::HttpHost edge_host{lan, "edge"};
  middleware::HttpHost rsu_host{lan, "rsu"};
  RoadsideCamera camera{sched, {.position = {0, 8}, .facing_rad = M_PI / 2, .max_range_m = 12.0}};
  YoloSimulator yolo{rng.child("yolo")};
  ObjectDetectionService detection{sched, bus, camera, yolo, rng.child("od")};
  its::Ldm ldm{sched, frame};
  HazardAdvertisementService hazard;
  int triggers{0};

  CpaRig()
      : hazard{sched,
               bus,
               edge_host,
               frame,
               {0, 8},
               M_PI / 2,
               rng.child("hz"),
               HazardServiceConfig{.trigger_mode = HazardTriggerMode::CpaPrediction},
               &ldm} {
    ldm.set_vehicle_entry_lifetime(sim::SimTime::seconds(60));
    rsu_host.handle("/trigger_denm", [this](const middleware::HttpRequest&) {
      ++triggers;
      return middleware::HttpResponse{200, "station=900;sequence=1"};
    });
  }

  void put_vehicle_in_ldm(its::StationId id, geo::Vec2 pos, double heading_rad, double speed) {
    its::Cam cam;
    cam.header.station_id = id;
    const geo::GeoPosition gp = frame.to_geo(pos);
    cam.basic.reference_position.latitude = geo::to_its_tenth_microdegree(gp.latitude_deg);
    cam.basic.reference_position.longitude = geo::to_its_tenth_microdegree(gp.longitude_deg);
    cam.high_frequency.speed = its::Speed::from_mps(speed);
    cam.high_frequency.heading.value_01deg =
        static_cast<std::uint16_t>(std::fmod(heading_rad * 180.0 / M_PI + 360.0, 360.0) * 10.0);
    ldm.update_from_cam(cam);
  }
};

TEST(HazardCpa, PredictsCrossingCollisionFromLdmAndCamera) {
  CpaRig rig;
  // Protagonist northbound towards the intersection at (0, 8).
  rig.put_vehicle_in_ldm(42, {0, 2.0}, 0.0, 1.2);
  // Crossing road user approaches the same point from the east.
  geo::Vec2 user{5.8, 8.0};
  rig.camera.add_object({1, [&] { return user; }, Presentation::StopSign, "car"});
  std::function<void()> move = [&] {
    user.x -= 0.06;  // 1.2 m/s sampled at 50 ms
    rig.sched.schedule_in(50_ms, move);
  };
  rig.sched.schedule_in(50_ms, move);
  rig.detection.start();
  rig.hazard.start();
  rig.sched.run_until(4_s);
  EXPECT_GE(rig.triggers, 1);
  EXPECT_GE(rig.hazard.stats().crossings_detected, 1u);
}

TEST(HazardCpa, NoTriggerWhenUserTurnsAway) {
  CpaRig rig;
  rig.put_vehicle_in_ldm(42, {0, 2.0}, 0.0, 1.2);
  // The road user moves *away* from the conflict point.
  geo::Vec2 user{4.0, 8.0};
  rig.camera.add_object({1, [&] { return user; }, Presentation::StopSign, "car"});
  std::function<void()> move = [&] {
    user.x += 0.06;  // eastbound, diverging
    rig.sched.schedule_in(50_ms, move);
  };
  rig.sched.schedule_in(50_ms, move);
  rig.detection.start();
  rig.hazard.start();
  rig.sched.run_until(4_s);
  EXPECT_EQ(rig.triggers, 0);
}

TEST(HazardCpa, NoTriggerWithoutLdmVehicle) {
  CpaRig rig;  // LDM left empty: no protagonist to protect
  geo::Vec2 user{5.8, 8.0};
  rig.camera.add_object({1, [&] { return user; }, Presentation::StopSign, "car"});
  std::function<void()> move = [&] {
    user.x -= 0.06;
    rig.sched.schedule_in(50_ms, move);
  };
  rig.sched.schedule_in(50_ms, move);
  rig.detection.start();
  rig.hazard.start();
  rig.sched.run_until(4_s);
  EXPECT_EQ(rig.triggers, 0);
}

TEST(MultiCamera, TwoCamerasFeedOneHazardService) {
  // Two cameras watching different roads publish into the same detection
  // topic; the hazard service reacts to whichever sees a crossing first.
  EdgeRig rig;  // camera #1 at (0,8) facing south
  RoadsideCamera camera2{rig.sched, {.position = {8, 8}, .facing_rad = 3 * M_PI / 2}};
  ObjectDetectionService detection2{rig.sched,       rig.bus, camera2, rig.yolo,
                                    rig.rng.child("od2")};
  // An object approaching camera #2 only (out of camera #1's view).
  geo::Vec2 pos{4.5, 8.0};
  camera2.add_object({77, [&] { return pos; }, Presentation::StopSign, "car"});
  rig.detection.start();
  detection2.start();
  rig.hazard.start();
  std::function<void()> move = [&] {
    pos.x += 0.05;  // towards camera #2 at 1 m/s
    rig.sched.schedule_in(50_ms, move);
  };
  rig.sched.schedule_in(50_ms, move);
  rig.sched.run_until(4_s);
  EXPECT_EQ(rig.hazard.stats().denms_triggered, 1u);
  ASSERT_EQ(rig.trigger_bodies.size(), 1u);
}

TEST(HazardCamPairs, TwoCamVehiclesOnCollisionCourseTriggerDenm) {
  // No camera detection at all: the assessment runs purely on CAMs (paper
  // §II-A: the infrastructure "could also receive information ... from CA
  // Messages broadcast by vehicles").
  sim::Scheduler sched;
  sim::RandomStream rng{31, "campair"};
  geo::LocalFrame frame{{41.1780, -8.6080}};
  middleware::MessageBus bus{sched, rng.child("bus")};
  middleware::HttpLan lan{sched, rng.child("lan")};
  middleware::HttpHost edge_host{lan, "edge"};
  middleware::HttpHost rsu_host{lan, "rsu"};
  its::Ldm ldm{sched, frame};
  ldm.set_vehicle_entry_lifetime(sim::SimTime::seconds(60));
  HazardServiceConfig config;
  config.monitor_cam_pairs = true;
  int triggers = 0;
  rsu_host.handle("/trigger_denm", [&](const middleware::HttpRequest& req) {
    ++triggers;
    const auto kv = middleware::KvBody::parse(req.body);
    EXPECT_EQ(kv.get_int("cause"), 97);
    return middleware::HttpResponse{200, "station=900;sequence=1"};
  });
  HazardAdvertisementService hazard{sched, bus,     edge_host, frame, {0, 8}, M_PI / 2,
                                    rng.child("hz"), config,    &ldm};

  // Vehicle 1 northbound, vehicle 2 westbound, meeting at (0, 8) in ~4 s.
  const auto put = [&](its::StationId id, geo::Vec2 pos, double heading, double speed) {
    its::Cam cam;
    cam.header.station_id = id;
    const geo::GeoPosition gp = frame.to_geo(pos);
    cam.basic.reference_position.latitude = geo::to_its_tenth_microdegree(gp.latitude_deg);
    cam.basic.reference_position.longitude = geo::to_its_tenth_microdegree(gp.longitude_deg);
    cam.high_frequency.speed = its::Speed::from_mps(speed);
    cam.high_frequency.heading.value_01deg =
        static_cast<std::uint16_t>(std::fmod(heading * 180.0 / M_PI + 360.0, 360.0) * 10.0);
    ldm.update_from_cam(cam);
  };
  put(42, {0, 3.2}, 0.0, 1.2);
  put(43, {4.8, 8.0}, 3 * M_PI / 2, 1.2);
  hazard.start();
  sched.run_until(sim::SimTime::seconds(2));
  EXPECT_GE(triggers, 1);

  // Diverging vehicles never trigger.
  triggers = 0;
  hazard.rearm();
  put(42, {0, 3.2}, 0.0, 1.2);
  put(43, {4.8, 8.0}, M_PI / 2, 1.2);  // eastbound, away from the conflict
  sched.run_until(sched.now() + sim::SimTime::seconds(2));
  // (the stale crossing pair has expired from the 2 s-old entries? no:
  // 60 s lifetime — but both entries were overwritten above)
  EXPECT_EQ(triggers, 0);
}

TEST(Hazard, RearmAllowsSecondTrigger) {
  EdgeRig rig;
  HazardServiceConfig config;
  config.rearm_delay = 500_ms;
  // Rebuild hazard with the short re-arm via a fresh rig member is complex;
  // instead drive the default service through rearm() directly.
  geo::Vec2 pos{0, 6.8};  // 1.2 m: below threshold immediately
  rig.camera.add_object({1, [&] { return pos; }, Presentation::StopSign, "car"});
  rig.detection.start();
  rig.hazard.start();
  rig.sched.run_until(2_s);
  EXPECT_EQ(rig.hazard.stats().denms_triggered, 1u);
  rig.hazard.rearm();
  rig.sched.run_until(4_s);
  EXPECT_GE(rig.hazard.stats().denms_triggered, 2u);
}

}  // namespace
}  // namespace rst::roadside
