// Counts heap allocations to prove the scheduler's hot paths are
// allocation-free in steady state:
//   - post_at / post_in with a small callback never allocate once the
//     event heap has reached its high-water capacity, and
//   - schedule_at reuses pooled handle-state nodes instead of hitting
//     the global heap per event.
//
// This test overrides the global operator new/delete, which is why it
// lives in its own binary (each rst_test is a separate executable).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "rst/sim/scheduler.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using rst::sim::Scheduler;
using rst::sim::SimTime;

class CountScope {
 public:
  CountScope() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountScope() { g_counting.store(false, std::memory_order_relaxed); }
  [[nodiscard]] std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(SchedulerAlloc, FireAndForgetSteadyStateIsAllocationFree) {
  Scheduler sched;
  std::uint64_t fired = 0;

  // Warm-up: grow the event heap to its working-set size and let the
  // SmallFunction inline storage prove itself.
  for (int i = 0; i < 1024; ++i) {
    sched.post_in(SimTime::microseconds(i + 1), [&fired] { ++fired; });
  }
  sched.run();
  ASSERT_EQ(fired, 1024u);

  // Steady state: schedule and drain the same working set. The callback
  // fits SmallFunction's inline buffer, post_* skips handle allocation,
  // and the heap vector keeps its capacity, so nothing may allocate.
  {
    CountScope scope;
    for (int round = 0; round < 16; ++round) {
      for (int i = 0; i < 256; ++i) {
        sched.post_in(SimTime::microseconds(i + 1), [&fired] { ++fired; });
      }
      sched.run();
    }
    EXPECT_EQ(scope.count(), 0u)
        << "fire-and-forget scheduling allocated in steady state";
  }
  EXPECT_EQ(fired, 1024u + 16u * 256u);
}

/// The pattern every periodic service uses: a callback that re-posts
/// itself. Small enough for SmallFunction's inline storage.
struct Tick {
  Scheduler* sched;
  std::uint64_t* ticks;
  void operator()() const {
    ++*ticks;
    if (*ticks < 2048) sched->post_in(SimTime::milliseconds(1), Tick{sched, ticks});
  }
};

TEST(SchedulerAlloc, SelfReschedulingTimerIsAllocationFree) {
  Scheduler sched;
  std::uint64_t ticks = 0;
  sched.post_in(SimTime::milliseconds(1), Tick{&sched, &ticks});
  sched.run_until(SimTime::milliseconds(100));  // warm-up: 100 ticks

  const auto warm = ticks;
  {
    CountScope scope;
    sched.run();
    EXPECT_EQ(scope.count(), 0u) << "self-rescheduling timer allocated";
  }
  EXPECT_EQ(ticks, 2048u);
  EXPECT_GT(ticks, warm);
}

TEST(SchedulerAlloc, PooledHandlesReuseNodes) {
  // schedule_at allocates handle state from the slab pool: after the pool
  // has grown to cover the working set, further handle churn is
  // allocation-free too.
  Scheduler sched;
  std::uint64_t fired = 0;
  for (int i = 0; i < 512; ++i) {
    (void)sched.schedule_in(SimTime::microseconds(i + 1), [&fired] { ++fired; });
  }
  sched.run();

  {
    CountScope scope;
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 256; ++i) {
        (void)sched.schedule_in(SimTime::microseconds(i + 1), [&fired] { ++fired; });
      }
      sched.run();
    }
    EXPECT_EQ(scope.count(), 0u) << "pooled handle states hit the global heap";
  }
  EXPECT_EQ(fired, 512u + 8u * 256u);
}

TEST(SchedulerAlloc, CancelledEventsArePurgedWithoutAllocation) {
  Scheduler sched;
  std::uint64_t fired = 0;
  // Warm-up with the same mix.
  std::vector<rst::sim::EventHandle> handles;
  handles.reserve(256);
  for (int i = 0; i < 256; ++i) {
    handles.push_back(sched.schedule_in(SimTime::microseconds(i + 1), [&fired] { ++fired; }));
  }
  for (auto& h : handles) h.cancel();
  handles.clear();
  sched.run();
  ASSERT_EQ(fired, 0u);

  {
    CountScope scope;
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 128; ++i) {
        handles.push_back(sched.schedule_in(SimTime::microseconds(i + 1), [&fired] { ++fired; }));
      }
      for (auto& h : handles) h.cancel();
      handles.clear();
      sched.run();
    }
    EXPECT_EQ(scope.count(), 0u);
  }
  EXPECT_EQ(fired, 0u);
  EXPECT_GT(sched.purged_events() + sched.executed_events(), 0u);
}

}  // namespace
