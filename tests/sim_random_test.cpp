#include "rst/sim/random.hpp"

#include <gtest/gtest.h>

#include "rst/sim/stats.hpp"

namespace rst::sim {
namespace {

TEST(RandomStream, DeterministicForSameSeedAndName) {
  RandomStream a{42, "channel"};
  RandomStream b{42, "channel"};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RandomStream, DifferentNamesAreIndependent) {
  RandomStream a{42, "alpha"};
  RandomStream b{42, "beta"};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomStream, ChildStreamsAreStable) {
  RandomStream root{7, "root"};
  RandomStream c1 = root.child("x");
  RandomStream c2 = RandomStream{7, "root"}.child("x");
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(c1.uniform01(), c2.uniform01());
}

TEST(RandomStream, ConsumingParentDoesNotAffectChild) {
  RandomStream root1{9, "r"};
  RandomStream root2{9, "r"};
  (void)root1.uniform01();  // consume from one parent only
  RandomStream c1 = root1.child("k");
  RandomStream c2 = root2.child("k");
  EXPECT_DOUBLE_EQ(c1.uniform01(), c2.uniform01());
}

TEST(RandomStream, UniformRespectsBounds) {
  RandomStream r{1, "u"};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_THROW((void)r.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(RandomStream, UniformIntCoversInclusiveRange) {
  RandomStream r{1, "ui"};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, NormalMomentsApproximatelyCorrect) {
  RandomStream r{123, "n"};
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RandomStream, NormalMinNeverBelowFloor) {
  RandomStream r{5, "nm"};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal_min(1.0, 5.0, 0.5), 0.5);
  }
}

TEST(RandomStream, ExponentialMeanApproximatelyCorrect) {
  RandomStream r{11, "e"};
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_THROW((void)r.exponential(0.0), std::invalid_argument);
}

TEST(RandomStream, BernoulliEdgeCases) {
  RandomStream r{2, "b"};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RandomStream, UniformTimeWithinBounds) {
  using namespace rst::sim::literals;
  RandomStream r{3, "t"};
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = r.uniform_time(10_ms, 20_ms);
    EXPECT_GE(t, 10_ms);
    EXPECT_LE(t, 20_ms);
  }
}

TEST(RandomStream, NormalTimeRespectsMinimum) {
  using namespace rst::sim::literals;
  RandomStream r{4, "nt"};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal_time(5_ms, 10_ms, 1_ms), 1_ms);
  }
}

TEST(StableHash, KnownPropertiesHold) {
  EXPECT_EQ(stable_hash("abc"), stable_hash("abc"));
  EXPECT_NE(stable_hash("abc"), stable_hash("abd"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

}  // namespace
}  // namespace rst::sim
