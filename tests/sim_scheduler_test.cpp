#include "rst/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rst/sim/trace.hpp"

namespace rst::sim {
namespace {

using namespace rst::sim::literals;

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30_ms, [&] { order.push_back(3); });
  sched.schedule_at(10_ms, [&] { order.push_back(1); });
  sched.schedule_at(20_ms, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30_ms);
}

TEST(Scheduler, EqualTimestampsFireInSchedulingOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(5_ms, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler sched;
  SimTime fired_at;
  sched.schedule_at(10_ms, [&] {
    sched.schedule_in(5_ms, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired_at, 15_ms);
}

TEST(Scheduler, RejectsPastScheduling) {
  Scheduler sched;
  sched.schedule_at(10_ms, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(5_ms, [] {}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  EventHandle h = sched.schedule_at(10_ms, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler sched;
  EventHandle h = sched.schedule_at(1_ms, [] {});
  sched.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
  h.cancel();
}

TEST(Scheduler, RunUntilAdvancesClockToDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(10_ms, [&] { ++fired; });
  sched.schedule_at(50_ms, [&] { ++fired; });
  const auto n = sched.run_until(20_ms);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 20_ms);
  EXPECT_EQ(sched.pending_events(), 1u);
}

TEST(Scheduler, RunUntilExecutesEventAtExactDeadline) {
  Scheduler sched;
  bool fired = false;
  sched.schedule_at(20_ms, [&] { fired = true; });
  sched.run_until(20_ms);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunWithLimitStopsEarly) {
  Scheduler sched;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    sched.schedule_at(SimTime::milliseconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(sched.run(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.run(), 3u);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1_ms, [&] { ++fired; });
  sched.schedule_at(2_ms, [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 100) sched.schedule_in(1_ms, next);
  };
  sched.schedule_in(1_ms, next);
  sched.run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(sched.now(), 100_ms);
  EXPECT_EQ(sched.executed_events(), 100u);
}

TEST(Scheduler, CancelledEventsDoNotAdvanceClockInRunUntil) {
  Scheduler sched;
  EventHandle h = sched.schedule_at(5_ms, [] {});
  h.cancel();
  sched.run_until(3_ms);
  EXPECT_EQ(sched.now(), 3_ms);
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(Scheduler, SameTimestampOrderSpansPostAndScheduleInterleavings) {
  // The FIFO-within-timestamp guarantee is per insertion, not per entry
  // point: tracked schedule_at, fire-and-forget post_at and relative
  // schedule_in/post_in all share one sequence counter.
  Scheduler sched;
  std::vector<int> order;
  sched.post_at(5_ms, [&] { order.push_back(0); });
  sched.schedule_at(5_ms, [&] { order.push_back(1); });
  sched.post_in(5_ms, [&] { order.push_back(2); });
  EventHandle tracked = sched.schedule_in(5_ms, [&] { order.push_back(3); });
  sched.post_at(5_ms, [&] { order.push_back(4); });
  (void)tracked;
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancellingMiddleOfSameTimestampBatchPreservesTheRest) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(sched.schedule_at(5_ms, [&order, i] { order.push_back(i); }));
  }
  handles[1].cancel();
  handles[4].cancel();
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5}));
  EXPECT_EQ(sched.executed_events(), 4u);
}

TEST(Scheduler, CancelFromWithinSameTimestampBatch) {
  // An earlier event at the same timestamp cancels a later one: the later
  // callback must not fire even though it was already due.
  Scheduler sched;
  std::vector<int> order;
  EventHandle victim = sched.schedule_at(5_ms, [&] { order.push_back(99); });
  sched.post_at(5_ms, [&] {
    order.push_back(0);
    victim.cancel();
  });
  // Scheduled after the canceller but before the victim fires — still runs.
  sched.post_at(5_ms, [&] { order.push_back(1); });
  sched.run();
  // victim was scheduled first, so it fires before its canceller: cancel
  // after fire is a safe no-op and the batch order is unchanged.
  EXPECT_EQ(order, (std::vector<int>{99, 0, 1}));

  // Now the canceller is scheduled first and the victim second.
  Scheduler sched2;
  order.clear();
  EventHandle victim2;
  sched2.post_at(5_ms, [&] {
    order.push_back(0);
    victim2.cancel();
  });
  victim2 = sched2.schedule_at(5_ms, [&] { order.push_back(99); });
  sched2.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(sched2.executed_events(), 1u);
}

TEST(Scheduler, RescheduleAtSameTimestampFromRunningEventGoesToBatchTail) {
  Scheduler sched;
  std::vector<int> order;
  sched.post_at(5_ms, [&] {
    order.push_back(0);
    // now() == 5 ms: scheduling *at* now from inside an event is legal and
    // must append behind the rest of the 5 ms batch.
    sched.post_at(5_ms, [&] { order.push_back(2); });
  });
  sched.post_at(5_ms, [&] { order.push_back(1); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Trace, RecordAndFilteredLookup) {
  Trace trace;
  trace.record(1_ms, "den.900", "DENM sent action=900/1");
  trace.record(2_ms, "den.42", "DENM received action=900/1");
  trace.record(3_ms, "control", "power cut commanded");
  trace.record(4_ms, "den.900", "DENM sent action=900/2");

  ASSERT_EQ(trace.records().size(), 4u);
  const auto* first_sent = trace.find("den.900", "DENM sent");
  ASSERT_NE(first_sent, nullptr);
  EXPECT_EQ(first_sent->when, 1_ms);
  // `from` skips earlier records.
  const auto* second_sent = trace.find("den.900", "DENM sent", 2_ms);
  ASSERT_NE(second_sent, nullptr);
  EXPECT_EQ(second_sent->when, 4_ms);
  // Substring match on both fields.
  EXPECT_NE(trace.find("control", "power cut"), nullptr);
  EXPECT_EQ(trace.find("control", "no such message"), nullptr);
  EXPECT_EQ(trace.find("nobody", ""), nullptr);

  const auto all_sent = trace.find_all("den.", "DENM");
  EXPECT_EQ(all_sent.size(), 3u);

  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

TEST(Trace, CsvExportEscapesSpecials) {
  Trace trace;
  trace.record(1500_us, "den.900", "DENM sent action=900/1");
  trace.record(2_ms, "note", "contains, comma and \"quotes\"");
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("time_ms,component,message\n"), std::string::npos);
  EXPECT_NE(csv.find("1.500000,den.900,DENM sent action=900/1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"contains, comma and \"\"quotes\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace rst::sim
