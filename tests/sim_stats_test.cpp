#include "rst/sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rst/sim/random.hpp"

namespace rst::sim {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, PaperTable3VarianceConvention) {
  // The paper reports braking distances with variance 0.0022 over 7 runs —
  // the population (1/n) convention reproduces that from its samples.
  RunningStats s;
  for (double x : {0.43, 0.37, 0.31, 0.42, 0.31, 0.36, 0.36}) s.add(x);
  EXPECT_NEAR(s.mean(), 0.3657, 5e-4);
  EXPECT_NEAR(s.population_variance(), 0.0019, 5e-4);
}

TEST(RunningStats, MergeEqualsBulk) {
  RandomStream r{1, "merge"};
  RunningStats bulk;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(3.0, 1.5);
    bulk.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), bulk.min());
  EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  RunningStats empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Edf, StepValuesAndQuantiles) {
  Edf edf{{44, 44, 50, 55, 70, 70, 71, 71, 71, 55}};
  EXPECT_EQ(edf.count(), 10u);
  EXPECT_DOUBLE_EQ(edf.at(43.9), 0.0);
  EXPECT_DOUBLE_EQ(edf.at(44.0), 0.2);
  EXPECT_DOUBLE_EQ(edf.at(55.0), 0.5);
  EXPECT_DOUBLE_EQ(edf.at(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(edf.quantile(0.5), 55.0);
  EXPECT_DOUBLE_EQ(edf.quantile(1.0), 71.0);
  EXPECT_DOUBLE_EQ(edf.quantile(0.0), 44.0);
}

TEST(Edf, FractionInReproducesPaperFig11Statement) {
  // Paper Fig. 11: "60% of the samples occur between 44 and 55 ms, whereas
  // the remaining 40% occur between 70 and 71 ms" (samples of Table II).
  Edf edf{{71, 70, 52, 44, 55}};
  EXPECT_DOUBLE_EQ(edf.fraction_in(44, 55), 0.6);
  EXPECT_DOUBLE_EQ(edf.fraction_in(70, 71), 0.4);
}

TEST(Edf, StepsAreMonotone) {
  Edf edf{{3, 1, 2, 2, 5}};
  const auto steps = edf.steps();
  ASSERT_FALSE(steps.empty());
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i].first, steps[i - 1].first);
    EXPECT_GT(steps[i].second, steps[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(steps.back().second, 1.0);
}

TEST(Edf, QuantileOnEmptyThrows) {
  Edf edf{{}};
  EXPECT_THROW((void)edf.quantile(0.5), std::logic_error);
  EXPECT_DOUBLE_EQ(edf.at(1.0), 0.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h{0.0, 10.0, 5};
  h.add(-1);   // underflow
  h.add(0);    // bin 0
  h.add(1.9);  // bin 0
  h.add(2);    // bin 1
  h.add(9.99); // bin 4
  h.add(10);   // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
}

TEST(Histogram, RenderShowsBarsAndRanges) {
  Histogram h{0.0, 10.0, 2};
  for (int i = 0; i < 8; ++i) h.add(1.0);
  h.add(7.0);
  const std::string out = h.render(20);
  // Full-width bar for the peak bin, quarter-ish for the other.
  EXPECT_NE(out.find("[    0.00,    5.00)      8 |####################"), std::string::npos);
  EXPECT_NE(out.find("[    5.00,   10.00)      1 |##"), std::string::npos);
}

TEST(SpecialFunctions, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(SpecialFunctions, GammaP) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  // P(a, a) tends to ~0.5 for large a.
  EXPECT_NEAR(gamma_p(100.0, 100.0), 0.5, 0.03);
}

TEST(DistributionFit, RecoversNormalParameters) {
  RandomStream r{77, "fit"};
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(r.normal(50.0, 5.0));
  const auto fits = fit_distributions(samples);
  ASSERT_FALSE(fits.empty());
  // The normal family should fit well (best or near-best KS).
  const auto normal_it = std::find_if(fits.begin(), fits.end(),
                                      [](const auto& f) { return f.family == "normal"; });
  ASSERT_NE(normal_it, fits.end());
  EXPECT_NEAR(normal_it->p1, 50.0, 0.5);
  EXPECT_NEAR(normal_it->p2, 5.0, 0.3);
  EXPECT_LT(normal_it->ks_statistic, 0.03);
}

TEST(DistributionFit, SortedByKs) {
  RandomStream r{78, "fit2"};
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(r.lognormal(3.0, 0.5));
  const auto fits = fit_distributions(samples);
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LE(fits[i - 1].ks_statistic, fits[i].ks_statistic);
  }
  EXPECT_EQ(fits.front().family, "lognormal");
}

TEST(DistributionFit, CdfIsMonotoneForAllFamilies) {
  RandomStream r{79, "fit3"};
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(10.0 + r.exponential(5.0));
  for (const auto& fit : fit_distributions(samples)) {
    double prev = 0.0;
    for (double x = 0.0; x < 60.0; x += 0.5) {
      const double c = fit.cdf(x);
      EXPECT_GE(c, prev - 1e-12) << fit.family;
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
  }
}

TEST(BootstrapCi, CoversTheTrueMean) {
  RandomStream r{55, "boot"};
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(r.normal(58.4, 12.0));
  const auto ci = bootstrap_mean_ci(samples, 0.95);
  EXPECT_LT(ci.lower, ci.point);
  EXPECT_GT(ci.upper, ci.point);
  EXPECT_LT(ci.lower, 58.4 + 3.0);
  EXPECT_GT(ci.upper, 58.4 - 3.0);
  // Width ~ 2 * 1.96 * sigma / sqrt(n) ~ 3.3 ms.
  EXPECT_NEAR(ci.upper - ci.lower, 3.3, 1.2);
}

TEST(BootstrapCi, WidthShrinksWithSampleSize) {
  RandomStream r{56, "boot2"};
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 20; ++i) small.push_back(r.normal(10, 2));
  for (int i = 0; i < 500; ++i) large.push_back(r.normal(10, 2));
  const auto ci_small = bootstrap_mean_ci(small);
  const auto ci_large = bootstrap_mean_ci(large);
  EXPECT_GT(ci_small.upper - ci_small.lower, ci_large.upper - ci_large.lower);
}

TEST(BootstrapCi, Deterministic) {
  const std::vector<double> samples{1, 2, 3, 4, 5, 6, 7, 8};
  const auto a = bootstrap_mean_ci(samples, 0.9, 500, 7);
  const auto b = bootstrap_mean_ci(samples, 0.9, 500, 7);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapCi, RejectsBadInput) {
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0, 2.0}, 1.5), std::invalid_argument);
}

TEST(DistributionFit, RequiresTwoSamples) {
  EXPECT_THROW((void)fit_distributions({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace rst::sim
