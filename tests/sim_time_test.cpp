#include "rst/sim/time.hpp"

#include <gtest/gtest.h>

namespace rst::sim {
namespace {

using namespace rst::sim::literals;

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::milliseconds(1000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1000));
  EXPECT_EQ(SimTime::microseconds(1), SimTime::nanoseconds(1000));
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_EQ(1_ms, 1000_us);
}

TEST(SimTime, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::from_seconds(1.5).count_ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_seconds(1e-9).count_ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.4e-9).count_ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.6e-9).count_ns(), 2);
  EXPECT_EQ(SimTime::from_seconds(-2.5e-9).count_ns(), -3);  // half rounds away from zero
}

TEST(SimTime, Arithmetic) {
  const SimTime a = 100_ms;
  const SimTime b = 40_ms;
  EXPECT_EQ((a + b).to_milliseconds(), 140.0);
  EXPECT_EQ((a - b).to_milliseconds(), 60.0);
  EXPECT_EQ(a * 3, 300_ms);
  EXPECT_EQ(3 * a, 300_ms);
  EXPECT_EQ(a / b, 2);  // integer division of durations
  EXPECT_EQ(a / 4, 25_ms);
  EXPECT_EQ(a % b, 20_ms);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(SimTime::max(), 1000000_s);
  EXPECT_EQ(SimTime::zero().count_ns(), 0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = 5_ms;
  t += 5_ms;
  EXPECT_EQ(t, 10_ms);
  t -= 3_ms;
  EXPECT_EQ(t, 7_ms);
}

TEST(SimTime, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ((1500_us).to_milliseconds(), 1.5);
  EXPECT_DOUBLE_EQ((2_s).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ((3_us).to_microseconds(), 3.0);
}

TEST(SimTime, ToStringRendersMilliseconds) {
  EXPECT_EQ((1500_us).to_string(), "1.500ms");
}

}  // namespace
}  // namespace rst::sim
