#include "rst/geo/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rst/sim/random.hpp"

namespace rst::geo {
namespace {

std::vector<std::uint32_t> query_sorted(const SpatialGrid& grid, Vec2 center, double radius) {
  std::vector<std::uint32_t> out;
  grid.for_each_in_disc(center, radius, [&](std::uint32_t id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SpatialGrid, InsertRemoveAndSize) {
  SpatialGrid grid{10.0};
  EXPECT_EQ(grid.size(), 0u);
  grid.insert(1, {0.0, 0.0});
  grid.insert(2, {5.0, 5.0});
  grid.insert(3, {100.0, -100.0});
  EXPECT_EQ(grid.size(), 3u);
  grid.remove(2, {5.0, 5.0});
  EXPECT_EQ(grid.size(), 2u);
  const auto hits = query_sorted(grid, {0.0, 0.0}, 15.0);
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{1}));
}

TEST(SpatialGrid, CellBoundaryCrossing) {
  SpatialGrid grid{10.0};
  grid.insert(7, {9.9, 0.0});
  // Move within the same cell: no bin change.
  EXPECT_FALSE(grid.move(7, {9.9, 0.0}, {9.95, 0.0}));
  // Cross the x = 10 boundary: bin changes, membership follows.
  EXPECT_TRUE(grid.move(7, {9.95, 0.0}, {10.05, 0.0}));
  EXPECT_EQ(query_sorted(grid, {10.05, 0.0}, 1.0), (std::vector<std::uint32_t>{7}));
  // Negative coordinates use floor division, not truncation: -0.1 is in
  // cell -1, not cell 0.
  EXPECT_TRUE(grid.move(7, {10.05, 0.0}, {-0.1, -0.1}));
  EXPECT_EQ(query_sorted(grid, {-0.1, -0.1}, 0.5), (std::vector<std::uint32_t>{7}));
}

TEST(SpatialGrid, CellDomainIsStableInRangeAndRoughlyBalanced) {
  SpatialGrid grid{20.0};
  // Pure function of (cell, domains): repeated calls agree, and every
  // result stays inside [0, domains).
  std::vector<std::size_t> histogram(8, 0);
  for (int x = -40; x <= 40; ++x) {
    for (int y = -40; y <= 40; ++y) {
      const auto cell = grid.cell_of({x * 20.0 + 1.0, y * 20.0 + 1.0});
      const std::uint32_t d = SpatialGrid::cell_domain(cell, 8);
      ASSERT_LT(d, 8u);
      EXPECT_EQ(d, SpatialGrid::cell_domain(cell, 8));
      ++histogram[d];
    }
  }
  // splitmix64 over 6561 cells: each of 8 domains expects ~820. A loose
  // 2:1 band catches a broken mix without flaking on the exact counts.
  for (std::size_t d = 0; d < histogram.size(); ++d) {
    EXPECT_GT(histogram[d], 410u) << "domain " << d << " starved";
    EXPECT_LT(histogram[d], 1640u) << "domain " << d << " overloaded";
  }
}

TEST(SpatialGrid, CellDomainDegenerateCounts) {
  SpatialGrid grid{20.0};
  const auto cell = grid.cell_of({123.0, -456.0});
  EXPECT_EQ(SpatialGrid::cell_domain(cell, 0), 0u);
  EXPECT_EQ(SpatialGrid::cell_domain(cell, 1), 0u);
  // Adjacent cells should not all collapse into one domain (the failure
  // mode of keying on raw coordinates instead of a mixed hash).
  std::set<std::uint32_t> seen;
  for (int dx = 0; dx < 4; ++dx) {
    for (int dy = 0; dy < 4; ++dy) {
      seen.insert(SpatialGrid::cell_domain(grid.cell_of({dx * 20.0, dy * 20.0}), 4));
    }
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(SpatialGrid, DiscQueryIsSupersetAndCellTight) {
  SpatialGrid grid{25.0};
  sim::RandomStream rng{99, "grid_test"};
  struct Node {
    std::uint32_t id;
    Vec2 p;
  };
  std::vector<Node> nodes;
  for (std::uint32_t i = 0; i < 400; ++i) {
    Node n{i, {rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)}};
    grid.insert(n.id, n.p);
    nodes.push_back(n);
  }

  for (int q = 0; q < 50; ++q) {
    const Vec2 c{rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    const double r = rng.uniform(1.0, 300.0);
    const auto hits = query_sorted(grid, c, r);
    const std::set<std::uint32_t> hit_set(hits.begin(), hits.end());
    for (const Node& n : nodes) {
      const double d = distance(c, n.p);
      // Everything inside the disc must be visited (superset semantics)...
      if (d <= r) {
        EXPECT_TRUE(hit_set.count(n.id)) << "missed id " << n.id;
      }
      // ...and the query stays cell-tight: it covers the bounding box of
      // the disc rounded out to whole cells, whose farthest corner is at
      // sqrt(2) * (r + cell) from the center.
      const double bound = std::sqrt(2.0) * (r + 25.0);
      if (d > bound) {
        EXPECT_FALSE(hit_set.count(n.id)) << "over-visited id " << n.id;
      }
    }
  }
}

TEST(SpatialGrid, MovingNodesStayFindable) {
  SpatialGrid grid{5.0};
  sim::RandomStream rng{7, "grid_move"};
  std::vector<Vec2> pos(64);
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    pos[i] = {rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)};
    grid.insert(i, pos[i]);
  }
  for (int step = 0; step < 200; ++step) {
    const auto i = static_cast<std::uint32_t>(rng.uniform_int(0, 63));
    const Vec2 next{pos[i].x + rng.uniform(-7.0, 7.0), pos[i].y + rng.uniform(-7.0, 7.0)};
    grid.move(i, pos[i], next);
    pos[i] = next;
    const auto hits = query_sorted(grid, next, 0.5);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), i) != hits.end());
  }
  EXPECT_EQ(grid.size(), 64u);
}

}  // namespace
}  // namespace rst::geo
