// Counts heap allocations to prove the typed tracing path — record_event,
// span markers, counter increments, histogram observations — is
// allocation-free at steady state (one warm-up event pays for the ring
// buffer reserve, nothing after).
//
// Like scheduler_alloc_test, this overrides the global operator
// new/delete and therefore lives in its own binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "rst/sim/metrics.hpp"
#include "rst/sim/trace.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace rst::sim {
namespace {

using namespace rst::sim::literals;

class CountScope {
 public:
  CountScope() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountScope() { g_counting.store(false, std::memory_order_relaxed); }
  [[nodiscard]] std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(TraceAlloc, TypedRecordingIsAllocationFreeAfterWarmup) {
  Trace trace;
  // First event reserves the ring buffer — the one allowed allocation.
  trace.record_event(1_ms, Stage::DenmTx, 900, pack_action(900, 1));

  {
    CountScope scope;
    for (int i = 0; i < 1000; ++i) {
      trace.record_event(SimTime::milliseconds(i), Stage::CamTx, 1,
                         static_cast<std::uint64_t>(i));
      trace.span_begin(SimTime::milliseconds(i), Stage::DenmPoll, 0,
                       static_cast<std::uint64_t>(i));
      trace.span_end(SimTime::milliseconds(i), Stage::DenmPoll, 0,
                     static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(scope.count(), 0u);
  }
  EXPECT_EQ(trace.events().size(), 3001u);
}

TEST(TraceAlloc, RingOverflowDropPathIsAllocationFree) {
  Trace trace;
  trace.set_event_capacity(8);
  for (int i = 0; i < 8; ++i) trace.record_event(1_ms, Stage::CamTx, 1);
  {
    CountScope scope;
    for (int i = 0; i < 1000; ++i) trace.record_event(2_ms, Stage::CamTx, 1);
    EXPECT_EQ(scope.count(), 0u);
  }
  EXPECT_EQ(trace.events_dropped(), 1000u);
}

TEST(TraceAlloc, MetricsHotPathIsAllocationFree) {
  MetricsRegistry registry;
  // Registration allocates (map insert + bucket vectors); grab refs once.
  auto& counter = registry.counter("polls");
  auto& histogram = registry.histogram("latency_ms");
  histogram.observe(1.0);  // warm-up

  {
    CountScope scope;
    for (int i = 0; i < 1000; ++i) {
      counter.add();
      histogram.observe(static_cast<double>(i % 97) + 0.5);
    }
    EXPECT_EQ(scope.count(), 0u);
  }
  EXPECT_EQ(counter.value(), 1000u);
  EXPECT_EQ(histogram.count(), 1001u);
}

}  // namespace
}  // namespace rst::sim
