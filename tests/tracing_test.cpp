#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rst/core/experiment.hpp"
#include "rst/core/testbed.hpp"
#include "rst/sim/metrics.hpp"
#include "rst/sim/trace.hpp"

namespace rst::sim {
namespace {

using namespace rst::sim::literals;

TEST(TraceTyped, RecordAndQueryByStageAndStation) {
  Trace trace;
  trace.record_event(1_ms, Stage::DenmTx, 900, pack_action(900, 1));
  trace.record_event(2_ms, Stage::DenmRx, 42, pack_action(900, 1));
  trace.record_event(3_ms, Stage::DenmTx, 900, pack_action(900, 2));

  ASSERT_EQ(trace.events().size(), 3u);
  const TraceEvent* first_tx = trace.find_event(Stage::DenmTx);
  ASSERT_NE(first_tx, nullptr);
  EXPECT_EQ(first_tx->when, 1_ms);
  EXPECT_EQ(action_station(first_tx->a), 900u);
  EXPECT_EQ(action_sequence(first_tx->a), 1u);

  const TraceEvent* later_tx = trace.find_event(Stage::DenmTx, 2_ms);
  ASSERT_NE(later_tx, nullptr);
  EXPECT_EQ(later_tx->when, 3_ms);

  EXPECT_EQ(trace.find_event(Stage::DenmRx, SimTime::zero(), 900), nullptr);
  const TraceEvent* rx = trace.find_event(Stage::DenmRx, SimTime::zero(), 42);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->when, 2_ms);

  EXPECT_EQ(trace.find_all_events(Stage::DenmTx).size(), 2u);
  EXPECT_EQ(trace.find_event(Stage::AebTrigger), nullptr);
}

TEST(TraceTyped, RingCapacityDropsNewestAndCounts) {
  Trace trace;
  trace.set_event_capacity(4);
  for (int i = 0; i < 6; ++i) {
    trace.record_event(SimTime::milliseconds(i), Stage::CamTx, 1,
                       static_cast<std::uint64_t>(i));
  }
  // Drop-new semantics: the earliest (pipeline-critical) events survive.
  ASSERT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.events_dropped(), 2u);
  EXPECT_EQ(trace.events().front().a, 0u);
  EXPECT_EQ(trace.events().back().a, 3u);
}

TEST(TraceTyped, LegacyViewRendersTypedEventsInSequenceOrder) {
  Trace trace;
  trace.record(1_ms, "custom", "string record first");
  trace.record_event(2_ms, Stage::DenmTx, 900, pack_action(900, 1));
  trace.record_event(3_ms, Stage::DenmRx, 42, pack_action(900, 1));
  trace.record(4_ms, "custom", "string record last");

  // The merged view interleaves both paths in recording order.
  const auto& all = trace.records();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].message, "string record first");
  EXPECT_EQ(all[1].component, "den.900");
  EXPECT_EQ(all[1].message, "DENM sent action=900/1");
  EXPECT_EQ(all[2].component, "den.42");
  EXPECT_EQ(all[2].message, "DENM received action=900/1");
  EXPECT_EQ(all[3].message, "string record last");

  // The legacy queries the rest of the codebase uses keep working.
  EXPECT_NE(trace.find("den.900", "DENM sent"), nullptr);
  EXPECT_NE(trace.find("den.42", "DENM received"), nullptr);
  EXPECT_EQ(trace.find_all("den.", "action=900/1").size(), 2u);

  // New recordings invalidate and rebuild the view.
  trace.record_event(5_ms, Stage::KafForward, 42, pack_action(900, 1));
  EXPECT_EQ(trace.records().size(), 5u);
  EXPECT_NE(trace.find("den.42", "keep-alive forwarded"), nullptr);
}

TEST(TraceTyped, SpanPairsRenderAsAsyncChromeEvents) {
  Trace trace;
  trace.span_begin(1_ms, Stage::DenmPoll, 0, 7);
  trace.span_end(2_ms, Stage::DenmPoll, 0, 7);
  trace.record_event(3_ms, Stage::EmergencyStop);
  trace.record(4_ms, "custom", "legacy \"quoted\" message");

  const std::string json = trace.to_chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"DenmPoll\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // ts is microseconds.
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  // The legacy record rides along with its message escaped.
  EXPECT_NE(json.find("legacy \\\"quoted\\\" message"), std::string::npos);
}

/// Minimal structural JSON check: balanced {} / [] outside strings, valid
/// escapes inside. Catches broken quoting/escaping without a full parser.
bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= text.size()) return false;
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(TraceTyped, FullScenarioEmitsAllPipelineStagesAndValidJson) {
  core::TestbedConfig config;
  config.seed = 9;
  core::TestbedScenario scenario{config};
  const auto result = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(result.stopped_by_denm);

  // Every Fig. 4 stage of the camera -> YOLO -> DENM -> actuation pipeline
  // must be present as a typed event.
  const Trace& trace = scenario.trace();
  for (const Stage stage :
       {Stage::CameraFrame, Stage::YoloDetection, Stage::HazardDecision, Stage::TriggerDenm,
        Stage::DenmTx, Stage::DenmRx, Stage::DenmPoll, Stage::DenmFetch, Stage::EmergencyStop,
        Stage::PowerCutCommand, Stage::PowerCutApplied}) {
    EXPECT_NE(trace.find_event(stage), nullptr) << "missing stage " << stage_name(stage);
  }

  // And the stage ordering must follow the physical pipeline.
  const auto* det = trace.find_event(Stage::HazardDecision);
  const auto* tx = trace.find_event(Stage::DenmTx);
  const auto* rx = trace.find_event(Stage::DenmRx, SimTime::zero(), config.obu.station_id);
  const auto* fetch = trace.find_event(Stage::DenmFetch);
  const auto* cut = trace.find_event(Stage::PowerCutCommand);
  ASSERT_TRUE(det && tx && rx && fetch && cut);
  EXPECT_LE(det->when, tx->when);
  EXPECT_LE(tx->when, rx->when);
  EXPECT_LE(rx->when, fetch->when);
  EXPECT_LE(fetch->when, cut->when);

  const std::string json = trace.to_chrome_trace_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"HazardDecision\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"CameraFrame\""), std::string::npos);
}

TEST(Metrics, CounterAndHistogramBasics) {
  MetricsRegistry registry;
  auto& c = registry.counter("denms_dropped");
  c.add();
  c.add(4);
  EXPECT_EQ(registry.counter("denms_dropped").value(), 5u);

  auto& h = registry.histogram("latency_ms");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min_seen(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 100.0);
  // Bucketed percentiles: generous tolerance, but the ordering must hold.
  EXPECT_NEAR(h.p50(), 50.0, 10.0);
  EXPECT_NEAR(h.p95(), 95.0, 10.0);
  EXPECT_NEAR(h.p99(), 99.0, 10.0);
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.max_seen());

  const std::string text = registry.format();
  EXPECT_NE(text.find("denms_dropped"), std::string::npos);
  EXPECT_NE(text.find("latency_ms"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(Metrics, HistogramEdgeCases) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.p50(), 3.0);  // single sample: clamped to [min, max] seen
  h.observe(1'000'000.0);          // beyond the last finite edge -> overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max_seen(), 1'000'000.0);
  EXPECT_LE(h.p99(), h.max_seen());
}

TEST(ExperimentMetrics, SummaryCarriesStageHistograms) {
  core::TestbedConfig config;
  config.seed = 21;
  const auto summary = core::run_emergency_brake_experiment(config, 3, 1);
  EXPECT_EQ(summary.metrics.counters().at("trials").value(), 3u);
  const auto& total = summary.metrics.histograms().at("stage.total_ms");
  EXPECT_EQ(total.count(), summary.total_ms.count());
  if (total.count() > 0) {
    EXPECT_NEAR(total.mean(), summary.total_ms.mean(), 1e-9);
  }
}

}  // namespace
}  // namespace rst::sim
