// Unit and stress coverage for sim::TrialPool: task/worker ratios, empty
// batches, exception capture + pool reuse, result ordering, and a
// 1000-task churn run. These tests are the ones CI also runs under
// ThreadSanitizer to keep the pool honest.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "rst/sim/trial_pool.hpp"

namespace rst {
namespace {

TEST(TrialPool, ThreadCountDefaultsToAtLeastOne) {
  sim::TrialPool auto_pool{0};
  EXPECT_GE(auto_pool.thread_count(), 1u);
  sim::TrialPool sized_pool{3};
  EXPECT_EQ(sized_pool.thread_count(), 3u);
}

TEST(TrialPool, ZeroTasksReturnsImmediately) {
  sim::TrialPool pool{4};
  bool called = false;
  pool.run_indexed(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  const auto out = pool.map(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

TEST(TrialPool, MoreTasksThanWorkersRunsEveryTaskExactlyOnce) {
  sim::TrialPool pool{2};
  constexpr std::size_t kTasks = 50;
  std::atomic<int> executions{0};
  const auto out = pool.map(kTasks, [&](std::size_t i) {
    executions.fetch_add(1, std::memory_order_relaxed);
    return i * i;
  });
  EXPECT_EQ(executions.load(), static_cast<int>(kTasks));
  ASSERT_EQ(out.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TrialPool, MoreWorkersThanTasks) {
  sim::TrialPool pool{8};
  const auto out = pool.map(3, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(TrialPool, SingleWorkerPreservesIndexOrder) {
  sim::TrialPool pool{1};
  std::vector<std::size_t> order;
  pool.run_indexed(10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(TrialPool, TaskExceptionIsRethrownOnJoinAndPoolStaysUsable) {
  sim::TrialPool pool{3};
  std::atomic<int> executions{0};
  const auto batch = [&](std::size_t i) {
    executions.fetch_add(1, std::memory_order_relaxed);
    if (i == 7) throw std::runtime_error{"trial 7 exploded"};
  };
  EXPECT_THROW(pool.run_indexed(16, batch), std::runtime_error);
  // The failing batch still drains fully before rethrowing.
  EXPECT_EQ(executions.load(), 16);

  // The pool survives the error and runs further batches to completion.
  executions = 0;
  const auto out = pool.map(16, [&](std::size_t i) {
    executions.fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  EXPECT_EQ(executions.load(), 16);
  EXPECT_EQ(out.back(), 15u);
}

TEST(TrialPool, ExceptionMessageSurvivesTheWorkerBoundary) {
  sim::TrialPool pool{2};
  try {
    pool.run_indexed(4, [](std::size_t i) {
      if (i == 2) throw std::invalid_argument{"bad seed"};
    });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string{e.what()}, "bad seed");
  }
}

TEST(TrialPool, EveryTaskThrowingStillDrainsAndRethrowsOne) {
  sim::TrialPool pool{4};
  std::atomic<int> executions{0};
  EXPECT_THROW(pool.run_indexed(20,
                                [&](std::size_t) {
                                  executions.fetch_add(1, std::memory_order_relaxed);
                                  throw std::runtime_error{"all fail"};
                                }),
               std::runtime_error);
  EXPECT_EQ(executions.load(), 20);
}

TEST(TrialPool, ThousandTaskChurn) {
  sim::TrialPool pool{4};
  constexpr std::size_t kTasks = 1000;
  std::vector<std::uint64_t> slots(kTasks, 0);
  std::atomic<std::uint64_t> checksum{0};
  pool.run_indexed(kTasks, [&](std::size_t i) {
    // Distinct slots are written concurrently; the atomic cross-checks that
    // every index is executed exactly once.
    slots[i] = static_cast<std::uint64_t>(i) * 3 + 1;
    checksum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(checksum.load(), kTasks * (kTasks - 1) / 2);
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(slots[i], i * 3 + 1);
}

TEST(TrialPool, RepeatedBatchReuseIsStable) {
  sim::TrialPool pool{4};
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = static_cast<std::size_t>(round % 7) + 1;
    const auto out = pool.map(n, [round](std::size_t i) {
      return static_cast<int>(i) + round;
    });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], static_cast<int>(i) + round);
  }
}

}  // namespace
}  // namespace rst
