#include <gtest/gtest.h>

#include <cmath>

#include "rst/middleware/message_bus.hpp"
#include "rst/vehicle/control_module.hpp"
#include "rst/vehicle/dynamics.hpp"
#include "rst/vehicle/line_detection.hpp"
#include "rst/vehicle/motion_planner.hpp"
#include "rst/vehicle/pid.hpp"
#include "rst/vehicle/track.hpp"

namespace rst::vehicle {
namespace {

using namespace rst::sim::literals;

TEST(Track, StraightGeometry) {
  const Track track = Track::straight({0, 0}, {0, 10});
  EXPECT_DOUBLE_EQ(track.length(), 10.0);
  EXPECT_EQ(track.point_at(0.0), (geo::Vec2{0, 0}));
  EXPECT_EQ(track.point_at(5.0), (geo::Vec2{0, 5}));
  EXPECT_EQ(track.point_at(99.0), (geo::Vec2{0, 10}));  // clamped
  EXPECT_NEAR(track.heading_at(5.0), 0.0, 1e-12);       // north
}

TEST(Track, ProjectionSignConvention) {
  const Track track = Track::straight({0, 0}, {0, 10});
  // Travelling north: west (-x) is left of the line -> positive offset.
  const auto left = track.project({-0.5, 5});
  EXPECT_NEAR(left.lateral_offset, 0.5, 1e-12);
  const auto right = track.project({0.5, 5});
  EXPECT_NEAR(right.lateral_offset, -0.5, 1e-12);
  EXPECT_NEAR(left.arc_length, 5.0, 1e-12);
  EXPECT_EQ(left.closest, (geo::Vec2{0, 5}));
}

TEST(Track, ProjectionClampsToEndpoints) {
  const Track track = Track::straight({0, 0}, {0, 10});
  const auto before = track.project({1, -3});
  EXPECT_NEAR(before.arc_length, 0.0, 1e-12);
  const auto after = track.project({0, 12});
  EXPECT_NEAR(after.arc_length, 10.0, 1e-12);
}

TEST(Track, LoopIsClosedAndSmooth) {
  const Track track = Track::loop({0, 0}, 10.0, 6.0);
  const auto& pts = track.waypoints();
  EXPECT_EQ(pts.front(), pts.back());
  EXPECT_GT(track.length(), 2 * (10.0 + 6.0) * 0.7);
  // Every point on the loop projects onto itself with zero offset.
  for (double s = 0; s < track.length(); s += 1.0) {
    const auto proj = track.project(track.point_at(s));
    EXPECT_NEAR(proj.lateral_offset, 0.0, 1e-9);
  }
}

TEST(Track, RejectsDegenerateInput) {
  EXPECT_THROW((Track{{geo::Vec2{0, 0}}}), std::invalid_argument);
  EXPECT_THROW((Track{{geo::Vec2{0, 0}, geo::Vec2{0, 0}}}), std::invalid_argument);
}

TEST(Pid, ProportionalOnly) {
  PidController pid{{.kp = 2.0, .ki = 0.0, .kd = 0.0}, -10, 10};
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.1), 2.0);
  EXPECT_DOUBLE_EQ(pid.update(-3.0, 0.1), -6.0);
}

TEST(Pid, OutputClampingAndAntiWindup) {
  PidController pid{{.kp = 1.0, .ki = 10.0, .kd = 0.0}, -1, 1};
  for (int i = 0; i < 100; ++i) (void)pid.update(5.0, 0.1);
  EXPECT_DOUBLE_EQ(pid.update(5.0, 0.1), 1.0);
  // With anti-windup the integral did not blow up: reversing the error
  // recovers quickly.
  double out = 0;
  for (int i = 0; i < 5; ++i) out = pid.update(-5.0, 0.1);
  EXPECT_LT(out, 0.0);
}

TEST(Pid, DerivativeDamps) {
  PidController with_d{{.kp = 1.0, .ki = 0.0, .kd = 1.0}, -100, 100};
  (void)with_d.update(1.0, 0.1);
  // Error shrinking: derivative term is negative, output below kp*e.
  EXPECT_LT(with_d.update(0.5, 0.1), 0.5);
}

TEST(Pid, ResetClearsState) {
  PidController pid{{.kp = 1.0, .ki = 1.0, .kd = 1.0}, -10, 10};
  (void)pid.update(2.0, 0.1);
  (void)pid.update(2.0, 0.1);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.1), 1.0 + 0.1);  // kp*e + ki*integral, no derivative kick
}

TEST(Dynamics, AcceleratesUnderThrottleAndCoastsDown) {
  sim::Scheduler sched;
  VehicleDynamics dyn{sched, {}, sim::RandomStream{1, "dyn"}};
  dyn.reset({0, 0}, 0.0);
  dyn.start();
  dyn.set_throttle(0.5);
  sched.run_until(3_s);
  EXPECT_GT(dyn.speed_mps(), 1.0);
  EXPECT_GT(dyn.position().y, 1.0);
  EXPECT_NEAR(dyn.position().x, 0.0, 1e-9);  // heading north, no steering
  const double v = dyn.speed_mps();
  dyn.set_throttle(0.0);
  sched.run_until(20_s);
  EXPECT_LT(dyn.speed_mps(), v);  // rolling resistance decays speed
}

TEST(Dynamics, PowerCutStopsVehicleQuickly) {
  sim::Scheduler sched;
  VehicleParams params;
  VehicleDynamics dyn{sched, params, sim::RandomStream{2, "dyn"}};
  dyn.reset({0, 0}, 0.0, 1.2);
  dyn.start();
  const double odo0 = dyn.odometer_m();
  dyn.cut_power();
  sched.run_until(2_s);
  EXPECT_TRUE(dyn.stopped());
  const double distance = dyn.odometer_m() - odo0;
  // v^2 / (2a) with a ~ 2.45 m/s^2 and friction variation: ~0.2-0.45 m.
  EXPECT_GT(distance, 0.15);
  EXPECT_LT(distance, 0.5);
  // Throttle is ignored after the cut.
  dyn.set_throttle(1.0);
  sched.run_until(4_s);
  EXPECT_TRUE(dyn.stopped());
}

TEST(Dynamics, SteeringTurnsTheVehicle) {
  sim::Scheduler sched;
  VehicleDynamics dyn{sched, {}, sim::RandomStream{3, "dyn"}};
  dyn.reset({0, 0}, 0.0, 1.0);
  dyn.start();
  dyn.set_throttle(0.2);
  dyn.set_steering(0.2);  // positive = clockwise (right)
  sched.run_until(2_s);
  EXPECT_GT(dyn.heading_rad(), 0.5);
  EXPECT_GT(dyn.position().x, 0.1);  // drifted east while turning right
}

TEST(Dynamics, SteeringClampedToServoLimit) {
  sim::Scheduler sched;
  VehicleParams params;
  params.max_steer_rad = 0.3;
  VehicleDynamics dyn{sched, params, sim::RandomStream{4, "dyn"}};
  dyn.reset({0, 0}, 0.0, 1.0);
  dyn.start();
  dyn.set_steering(5.0);  // far beyond the servo limit
  sched.run_until(1_s);
  // Coasting from 1 m/s: at most 1 m travelled, so the heading change is
  // bounded by tan(max_steer)/L per metre of travel.
  EXPECT_LT(dyn.heading_rad(), 1.0 * std::tan(0.3) / params.wheelbase_m + 1e-6);
  EXPECT_GT(dyn.heading_rad(), 0.1);
}

TEST(Dynamics, NeverReverses) {
  sim::Scheduler sched;
  VehicleDynamics dyn{sched, {}, sim::RandomStream{5, "dyn"}};
  dyn.reset({0, 0}, 0.0, 0.05);
  dyn.start();
  sched.run_until(5_s);
  EXPECT_GE(dyn.speed_mps(), 0.0);
  EXPECT_TRUE(dyn.stopped());
}

struct PipelineRig {
  sim::Scheduler sched;
  sim::RandomStream rng{9, "pipe"};
  middleware::MessageBus bus{sched, rng.child("bus")};
  Track track = Track::straight({0, 0}, {0, 30});
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  LineCameraSensor sensor{sched, bus, track, dyn, rng.child("cam")};
  MotionPlanner planner{sched, bus};
  ControlModule control{sched, bus, dyn, rng.child("ctl")};
};

TEST(Pipeline, LineFollowerHoldsTheLineAndSpeed) {
  PipelineRig rig;
  rig.dyn.reset({0.2, 0}, 0.3, 0.0);  // offset and misaligned on purpose
  rig.dyn.start();
  rig.sensor.start();
  rig.control.start();
  rig.sched.run_until(10_s);
  // Converged back onto the line at the target speed.
  const auto proj = rig.track.project(rig.dyn.position());
  EXPECT_LT(std::abs(proj.lateral_offset), 0.08);
  EXPECT_NEAR(rig.dyn.speed_mps(), 1.2, 0.15);
  EXPECT_GT(rig.dyn.position().y, 5.0);
  EXPECT_GT(rig.sensor.frames_processed(), 200u);
}

TEST(Pipeline, FollowsAClosedCircuitLap) {
  // The paper notes the platform "can navigate a closed-circuit fully
  // autonomously"; the line follower must hold a rounded-rectangle loop.
  sim::Scheduler sched;
  sim::RandomStream rng{77, "loop"};
  middleware::MessageBus bus{sched, rng.child("bus")};
  Track track = Track::loop({0, 0}, 8.0, 5.0);
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  LineCameraSensor sensor{sched, bus, track, dyn, rng.child("cam")};
  MotionPlannerConfig planner_config;
  planner_config.target_speed_mps = 0.9;  // curves need a gentler pace
  MotionPlanner planner{sched, bus, planner_config};
  ControlModule control{sched, bus, dyn, rng.child("ctl")};

  const geo::Vec2 start = track.point_at(0.0);
  dyn.reset(start, track.heading_at(0.0), 0.0);
  dyn.start();
  sensor.start();
  control.start();

  // Probe the worst lateral deviation over the whole lap.
  double worst_offset = 0;
  std::function<void()> probe = [&] {
    worst_offset = std::max(worst_offset, std::abs(track.project(dyn.position()).lateral_offset));
    sched.schedule_in(sim::SimTime::milliseconds(100), probe);
  };
  sched.schedule_in(sim::SimTime::milliseconds(100), probe);
  sched.run_until(sim::SimTime::seconds(45));

  // Finished at least a full lap without ever leaving the line's
  // neighbourhood (the sharp corners cost a few decimetres of overshoot).
  EXPECT_GT(dyn.odometer_m(), track.length());
  EXPECT_LT(worst_offset, 0.45);
}

TEST(Pipeline, EmergencyStopLatchesAndCutsPower) {
  PipelineRig rig;
  rig.dyn.reset({0, 0}, 0.0, 1.2);
  rig.dyn.start();
  rig.sensor.start();
  rig.control.start();
  rig.sched.run_until(2_s);
  EXPECT_FALSE(rig.planner.stopped());
  rig.bus.publish("v2x_emergency", std::string{"test"});
  rig.sched.run_until(4_s);
  EXPECT_TRUE(rig.planner.stopped());
  EXPECT_TRUE(rig.dyn.power_cut());
  EXPECT_TRUE(rig.dyn.stopped());
  // Line detections after the stop do not re-energise the vehicle.
  rig.sched.run_until(6_s);
  EXPECT_TRUE(rig.dyn.stopped());
}

TEST(Pipeline, ControlModuleLatchesAtPwmEdges) {
  sim::Scheduler sched;
  sim::RandomStream rng{10, "pwm"};
  middleware::MessageBus bus{sched, rng.child("bus")};
  VehicleDynamics dyn{sched, {}, rng.child("dyn")};
  dyn.reset({0, 0}, 0.0, 1.0);
  dyn.start();
  ControlModuleConfig config;
  config.pwm_period = 10_ms;
  ControlModule control{sched, bus, dyn, rng.child("ctl"), config};
  control.start();

  DriveCommand cmd;
  cmd.power_cut = true;
  bus.publish("drive_cmd", cmd);
  sched.run_until(30_ms);
  EXPECT_TRUE(dyn.power_cut());
  EXPECT_EQ(control.commands_applied(), 1u);
}

}  // namespace
}  // namespace rst::vehicle
